package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSweepModeCSVAndJSON(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-sweep", "-quick", "-workloads", "IS", "-systems", "A53", "-variants", "plain,manual", "-c", "16"}
	if err := run(args, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	csv := out.String()
	if !strings.HasPrefix(csv, "workload,system,variant") {
		t.Errorf("sweep CSV header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "IS,A53,manual,stride,interval,direct,16") {
		t.Errorf("sweep CSV row missing:\n%s", csv)
	}

	out.Reset()
	if err := run(append(args, "-json"), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("sweep -json: %v", err)
	}
	if !strings.Contains(out.String(), "\"Variant\": \"manual\"") {
		t.Errorf("sweep JSON malformed:\n%s", out.String())
	}
}

// TestSweepStoreWarmIsBitIdentical reruns a small sweep against one
// store directory and requires the warm output to match the cold one
// byte for byte.
func TestSweepStoreWarmIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-sweep", "-quick", "-workloads", "IS", "-systems", "A53",
		"-variants", "plain,manual", "-c", "16", "-store", dir}
	var cold, warm bytes.Buffer
	if err := run(args, &cold, &bytes.Buffer{}); err != nil {
		t.Fatalf("cold: %v", err)
	}
	if err := run(args, &warm, &bytes.Buffer{}); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm sweep differs from cold:\n%s\nvs\n%s", warm.String(), cold.String())
	}
}

func TestSweepModeRejectsUnknownNames(t *testing.T) {
	for _, args := range [][]string{
		{"-sweep", "-quick", "-workloads", "nope"},
		{"-sweep", "-quick", "-systems", "M4", "-workloads", "IS", "-variants", "plain"},
		{"-sweep", "-quick", "-variants", "jit", "-workloads", "IS"},
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestListEnumeratesAxes: -list must name every workload, system,
// variant and hardware-prefetcher model the grid accepts, so the axes
// are discoverable without reading source.
func TestListEnumeratesAxes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list", "-quick"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"workloads", "systems", "variants", "hardware prefetchers",
		"IS", "CG", "RA", "HJ-2", "HJ-8", "G500",
		"Haswell", "XeonPhi", "A57", "A53",
		"plain", "auto", "manual", "icc", "indirect-only",
		"default", "none", "stride", "nextline", "ghb", "imp",
		"nkeys=", // workload params are listed, not just names
		"execution modes", "direct:", "replay:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-list output missing %q:\n%s", want, s)
		}
	}
}

func TestQuickFig2CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "-csv", "-exp", "fig2"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("fig2: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, ",") || strings.Count(s, "\n") < 3 {
		t.Errorf("CSV output malformed:\n%s", s)
	}
}

// TestSweepGeneratedKernels: -gen adds generated kernels to the sweep
// pool, selectable by prefix, and the run produces a row per cell.
func TestSweepGeneratedKernels(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-sweep", "-quick", "-gen", "3", "-workloads", "GEN",
		"-systems", "A53", "-variants", "plain,auto", "-c", "16"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("gen sweep: %v", err)
	}
	csv := out.String()
	for _, want := range []string{"GEN-00,A53,plain,", "GEN-00,A53,auto,", "GEN-02,A53,auto,"} {
		if !strings.Contains(csv, want) {
			t.Errorf("gen sweep CSV missing %q:\n%s", want, csv)
		}
	}
	// Without -gen the names are unknown.
	if err := run([]string{"-sweep", "-quick", "-workloads", "GEN"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("GEN workloads selectable without -gen")
	}
}

// TestSweepExecReplay: a -exec replay sweep emits the same statistics
// as the direct sweep — the rows differ only in the exec column — and
// unknown modes are rejected.
func TestSweepExecReplay(t *testing.T) {
	args := []string{"-sweep", "-quick", "-workloads", "IS", "-systems", "Haswell,A53",
		"-variants", "plain,auto", "-c", "16"}
	var direct, replay bytes.Buffer
	if err := run(args, &direct, &bytes.Buffer{}); err != nil {
		t.Fatalf("direct: %v", err)
	}
	if err := run(append(args, "-exec", "replay"), &replay, &bytes.Buffer{}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	normalized := strings.ReplaceAll(replay.String(), ",replay,", ",direct,")
	if normalized != direct.String() {
		t.Errorf("replay sweep differs from direct beyond the exec column:\n%s\nvs\n%s",
			replay.String(), direct.String())
	}
	if !strings.Contains(replay.String(), ",replay,") {
		t.Error("replay sweep rows not labelled replay")
	}

	if err := run(append(args, "-exec", "jit"), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown exec mode accepted")
	}
}

// TestTraceImportReplay: -trace retimes an external text trace across
// the selected axes; the import grammar is pc addr size kind.
func TestTraceImportReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "capture.trace")
	var sb strings.Builder
	sb.WriteString("# synthetic capture: strided loads with a store and a prefetch\n")
	for i := 0; i < 256; i++ {
		fmt.Fprintf(&sb, "1 %d 8 L\n", 4096+64*i)
		if i%16 == 0 {
			fmt.Fprintf(&sb, "2 0x%x 8 S\n", 1<<20+8*i)
			fmt.Fprintf(&sb, "3 %d 8 P\n", 4096+64*(i+16))
		}
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-systems", "Haswell,A53", "-hwpf", "default,none"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("-trace: %v", err)
	}
	csv := out.String()
	if !strings.HasPrefix(csv, "workload,system,hwpf,cycles") {
		t.Errorf("trace replay header missing:\n%s", csv)
	}
	for _, want := range []string{"capture,Haswell,stride,", "capture,Haswell,none,", "capture,A53,none,"} {
		if !strings.Contains(csv, want) {
			t.Errorf("trace replay missing row %q:\n%s", want, csv)
		}
	}
	if strings.Count(csv, "\n") != 5 { // header + 2 systems x 2 models
		t.Errorf("expected 4 rows:\n%s", csv)
	}

	// JSON emission and determinism.
	var j1, j2 bytes.Buffer
	if err := run([]string{"-trace", path, "-systems", "A53", "-json"}, &j1, &bytes.Buffer{}); err != nil {
		t.Fatalf("-trace -json: %v", err)
	}
	if err := run([]string{"-trace", path, "-systems", "A53", "-json"}, &j2, &bytes.Buffer{}); err != nil {
		t.Fatalf("-trace -json rerun: %v", err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("trace replay is not deterministic")
	}
	if !strings.Contains(j1.String(), "\"Workload\": \"capture\"") {
		t.Errorf("trace replay JSON malformed:\n%s", j1.String())
	}

	// Failure modes: missing file, bad grammar.
	if err := run([]string{"-trace", filepath.Join(dir, "absent")}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing trace file accepted")
	}
	bad := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(bad, []byte("1 2 3 X\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", bad}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "bad kind") {
		t.Errorf("bad trace grammar error = %v", err)
	}
}
