package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSweepModeCSVAndJSON(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-sweep", "-quick", "-workloads", "IS", "-systems", "A53", "-variants", "plain,manual", "-c", "16"}
	if err := run(args, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	csv := out.String()
	if !strings.HasPrefix(csv, "workload,system,variant") {
		t.Errorf("sweep CSV header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "IS,A53,manual,stride,16") {
		t.Errorf("sweep CSV row missing:\n%s", csv)
	}

	out.Reset()
	if err := run(append(args, "-json"), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("sweep -json: %v", err)
	}
	if !strings.Contains(out.String(), "\"Variant\": \"manual\"") {
		t.Errorf("sweep JSON malformed:\n%s", out.String())
	}
}

// TestSweepStoreWarmIsBitIdentical reruns a small sweep against one
// store directory and requires the warm output to match the cold one
// byte for byte.
func TestSweepStoreWarmIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-sweep", "-quick", "-workloads", "IS", "-systems", "A53",
		"-variants", "plain,manual", "-c", "16", "-store", dir}
	var cold, warm bytes.Buffer
	if err := run(args, &cold, &bytes.Buffer{}); err != nil {
		t.Fatalf("cold: %v", err)
	}
	if err := run(args, &warm, &bytes.Buffer{}); err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm sweep differs from cold:\n%s\nvs\n%s", warm.String(), cold.String())
	}
}

func TestSweepModeRejectsUnknownNames(t *testing.T) {
	for _, args := range [][]string{
		{"-sweep", "-quick", "-workloads", "nope"},
		{"-sweep", "-quick", "-systems", "M4", "-workloads", "IS", "-variants", "plain"},
		{"-sweep", "-quick", "-variants", "jit", "-workloads", "IS"},
	} {
		if err := run(args, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// TestListEnumeratesAxes: -list must name every workload, system,
// variant and hardware-prefetcher model the grid accepts, so the axes
// are discoverable without reading source.
func TestListEnumeratesAxes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list", "-quick"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"workloads", "systems", "variants", "hardware prefetchers",
		"IS", "CG", "RA", "HJ-2", "HJ-8", "G500",
		"Haswell", "XeonPhi", "A57", "A53",
		"plain", "auto", "manual", "icc", "indirect-only",
		"default", "none", "stride", "nextline", "ghb", "imp",
		"nkeys=", // workload params are listed, not just names
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-list output missing %q:\n%s", want, s)
		}
	}
}

func TestQuickFig2CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "-csv", "-exp", "fig2"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("fig2: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, ",") || strings.Count(s, "\n") < 3 {
		t.Errorf("CSV output malformed:\n%s", s)
	}
}

// TestSweepGeneratedKernels: -gen adds generated kernels to the sweep
// pool, selectable by prefix, and the run produces a row per cell.
func TestSweepGeneratedKernels(t *testing.T) {
	var out, errBuf bytes.Buffer
	args := []string{"-sweep", "-quick", "-gen", "3", "-workloads", "GEN",
		"-systems", "A53", "-variants", "plain,auto", "-c", "16"}
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("gen sweep: %v", err)
	}
	csv := out.String()
	for _, want := range []string{"GEN-00,A53,plain,", "GEN-00,A53,auto,", "GEN-02,A53,auto,"} {
		if !strings.Contains(csv, want) {
			t.Errorf("gen sweep CSV missing %q:\n%s", want, csv)
		}
	}
	// Without -gen the names are unknown.
	if err := run([]string{"-sweep", "-quick", "-workloads", "GEN"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("GEN workloads selectable without -gen")
	}
}
