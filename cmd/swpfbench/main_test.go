package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestQuickFig2CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	var out bytes.Buffer
	if err := run([]string{"-quick", "-csv", "-exp", "fig2"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("fig2: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, ",") || strings.Count(s, "\n") < 3 {
		t.Errorf("CSV output malformed:\n%s", s)
	}
}
