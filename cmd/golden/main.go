// Command golden dumps exhaustive simulator statistics for a matrix of
// workloads, systems and variants as deterministic JSON. Engine
// refactors that claim bit-identical behaviour are checked by diffing
// two dumps:
//
//	git stash && go run ./cmd/golden > /tmp/before.json && git stash pop
//	go run ./cmd/golden > /tmp/after.json
//	diff /tmp/before.json /tmp/after.json
//
// The matrix is executed by the parallel sweep engine (-jobs, default
// all CPUs); the dump is byte-identical for every worker count, so
// `golden -jobs 1` against `golden -jobs N` doubles as the engine's
// serial-vs-parallel equivalence check.
//
// The workload sizes are reduced relative to the benchmark defaults so
// a full dump takes seconds, while still covering every variant, every
// machine, both TLB page sizes' behaviours and the hardware
// prefetcher. -hwpf widens the matrix across hardware-prefetcher
// models (internal/hwpf); `golden -hwpf stride` pins the ported
// streamer bit-identical to the pre-hwpf engine. -core does the same
// for CPU core timing models (internal/sim coremodel.go); `golden
// -core interval` pins the ported issue-interval core bit-identical
// to the pre-axis engine.
//
// -store DIR (default $SWPF_STORE) persists per-cell results in the
// content-addressed cache of internal/store, so repeated dumps cost
// one disk read per cell; dumps are byte-identical either way. Use
// -no-store to force fresh simulation.
//
// -exec replay dumps through the record/replay split (internal/trace):
// each (workload, variant) is interpreted once and the trace retimed
// on every machine x hwpf cell. The dump is byte-identical to the
// default -exec direct — the record format deliberately carries no
// mode field — so diffing a replay dump against a direct one is the
// whole-pipeline equivalence check for the trace subsystem (CI's
// nightly job does exactly that, at jobs 1 and 8).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/workloads"
)

type record struct {
	Workload string
	System   string
	Variant  string
	// HWPF labels the hardware-prefetcher model, but only when the
	// -hwpf axis selects more than one (derived configs keep the
	// machine name, so multi-model dumps would otherwise repeat
	// identical labels with different stats). Single-model dumps omit
	// it, keeping the default and `-hwpf stride` dumps byte-identical
	// to the pre-hwpf engine.
	HWPF string `json:",omitempty"`
	// Core labels the CPU core timing model, under the same rule as
	// HWPF: emitted only when the -core axis selects more than one
	// model, so single-model dumps stay byte-identical to pre-axis
	// dumps.
	Core     string `json:",omitempty"`
	Checksum int64
	Cycles   float64
	Stats    interface{}
	Hier     map[string]interface{}
}

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	default:
		fmt.Fprintln(os.Stderr, "golden:", err)
		os.Exit(1)
	}
}

// matrix returns the dump's workload set: the standard reduced sizes,
// or tiny inputs when tiny is set (used by tests to keep the
// serial-vs-parallel diff fast).
func matrix(tiny bool) []*workloads.Workload {
	if tiny {
		return workloads.Tiny()
	}
	return []*workloads.Workload{
		workloads.IS(1<<13, 1<<17),
		workloads.CG(1024, 48),
		workloads.RA(17, 1<<11),
		workloads.HJ(1<<12, 2),
		workloads.HJ(1<<12, 8),
		workloads.G500(10, 8),
	}
}

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("golden", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jobs = fs.Int("jobs", 0, "worker goroutines (0 = all CPUs, 1 = serial)")
		tiny = fs.Bool("tiny", false, "tiny workload sizes (fast smoke dump)")
		hwpf = fs.String("hwpf", "", "hardware-prefetcher axis: comma-separated models among default,none,stride,nextline,ghb,imp (default: default)")
		cm   = fs.String("core", "", "core-model axis: comma-separated models among default,interval,ooo,inorder (default: default)")
		exec = fs.String("exec", "", "execution mode: direct (interpret every cell) or replay (record each workload/variant once, retime everywhere); dumps are byte-identical either way")
	)
	resolveStore := store.BindFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	systems, err := sweep.ParseSystems("")
	if err != nil {
		return err
	}
	hws, err := sweep.ParseHWPrefetchers(*hwpf)
	if err != nil {
		return err
	}
	cms, err := sweep.ParseCores(*cm)
	if err != nil {
		return err
	}
	mode, err := core.ParseExecMode(*exec)
	if err != nil {
		return err
	}
	grid := sweep.Grid{
		Workloads:     matrix(*tiny),
		Systems:       systems,
		HWPrefetchers: hws,
		Cores:         cms,
		Variants:      sweep.Variants(),
		Options:       core.Options{Hoist: true},
		Execs:         []core.ExecMode{mode},
	}
	runner := sweep.Runner{Jobs: *jobs}
	if st, err := resolveStore(); err != nil {
		return err
	} else if st != nil {
		runner.Cache = st
		runner.OnPutError = store.PutWarner(stderr)
	}
	set, err := grid.RunWith(runner)
	if err != nil {
		return err
	}

	out := make([]record, 0, len(set.Outcomes))
	for i := range set.Outcomes {
		o := &set.Outcomes[i]
		rec := snapshot(o.Workload.Name, o.System.Name, o.Variant, o.Result)
		if len(hws) > 1 {
			rec.HWPF = o.System.HWPrefetcherName()
		}
		if len(cms) > 1 {
			rec.Core = o.System.CoreName()
		}
		out = append(out, rec)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func snapshot(workload, system string, v core.Variant, res *core.Result) record {
	return record{
		Workload: workload,
		System:   system,
		Variant:  string(v),
		Checksum: res.Checksum,
		Cycles:   res.Cycles,
		Stats:    res.Stats,
		Hier: map[string]interface{}{
			"L1Hits":             res.L1Hits,
			"L1Misses":           res.L1Misses,
			"DRAMAccesses":       res.DRAMAccesses,
			"SWPrefetches":       res.SWPrefetches,
			"HWPrefetches":       res.HWPrefetches,
			"TLBWalks":           res.TLBWalks,
			"LoadStallCycles":    res.LoadStallCycles,
			"PrefetchLateCycles": res.PrefetchLateCycles,
			"PrefetchedUnusedL1": res.PrefetchedUnusedL1,
		},
	}
}
