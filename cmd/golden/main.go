// Command golden dumps exhaustive simulator statistics for a matrix of
// workloads, systems and variants as deterministic JSON. Engine
// refactors that claim bit-identical behaviour are checked by diffing
// two dumps:
//
//	git stash && go run ./cmd/golden > /tmp/before.json && git stash pop
//	go run ./cmd/golden > /tmp/after.json
//	diff /tmp/before.json /tmp/after.json
//
// The workload sizes are reduced relative to the benchmark defaults so
// a full dump takes seconds, while still covering every variant, every
// machine, both TLB page sizes' behaviours and the stride prefetcher.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

type record struct {
	Workload string
	System   string
	Variant  string
	Checksum int64
	Cycles   float64
	Stats    interface{}
	Hier     map[string]interface{}
}

func main() {
	ws := []*workloads.Workload{
		workloads.IS(1<<13, 1<<17),
		workloads.CG(1024, 48),
		workloads.RA(17, 1<<11),
		workloads.HJ(1<<12, 2),
		workloads.HJ(1<<12, 8),
		workloads.G500(10, 8),
	}
	systems := uarch.All()
	variants := []core.Variant{core.VariantPlain, core.VariantAuto, core.VariantManual, core.VariantICC, core.VariantIndirectOnly}

	var out []record
	for _, w := range ws {
		for _, cfg := range systems {
			for _, v := range variants {
				res, err := core.Run(w, cfg, v, core.Options{Hoist: true})
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s/%s/%s: %v\n", w.Name, cfg.Name, v, err)
					os.Exit(1)
				}
				out = append(out, snapshot(w, cfg, v, res))
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		os.Exit(1)
	}
}

func snapshot(w *workloads.Workload, cfg *sim.Config, v core.Variant, res *core.Result) record {
	return record{
		Workload: w.Name,
		System:   cfg.Name,
		Variant:  string(v),
		Checksum: res.Checksum,
		Cycles:   res.Cycles,
		Stats:    res.Stats,
		Hier: map[string]interface{}{
			"L1Hits":             res.L1Hits,
			"L1Misses":           res.L1Misses,
			"DRAMAccesses":       res.DRAMAccesses,
			"SWPrefetches":       res.SWPrefetches,
			"HWPrefetches":       res.HWPrefetches,
			"TLBWalks":           res.TLBWalks,
			"LoadStallCycles":    res.LoadStallCycles,
			"PrefetchedUnusedL1": res.PrefetchedUnusedL1,
		},
	}
}
