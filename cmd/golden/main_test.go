package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTinyDumpSerialVsParallel diffs a tiny-matrix dump between one
// worker and many: the bytes must match exactly. This runs even in
// -short mode; the full-size equivalence lives in internal/sweep.
func TestTinyDumpSerialVsParallel(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-tiny", "-jobs", "1"}, &serial, &bytes.Buffer{}); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := run([]string{"-tiny", "-jobs", "6"}, &parallel, &bytes.Buffer{}); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("golden dump differs between -jobs 1 and -jobs 6")
	}
	// Sanity: the dump covers the full variant matrix.
	s := serial.String()
	for _, want := range []string{"\"plain\"", "\"auto\"", "\"manual\"", "\"icc\"", "\"indirect-only\"",
		"\"Haswell\"", "\"XeonPhi\"", "\"A57\"", "\"A53\""} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %s", want)
		}
	}
}

// TestStoredDumpBitIdentical runs the tiny dump three times — no
// store, cold store, warm store — and requires byte-identical output:
// the result cache must be invisible in the statistics.
func TestStoredDumpBitIdentical(t *testing.T) {
	dir := t.TempDir()
	var plain, cold, warm bytes.Buffer
	if err := run([]string{"-tiny", "-no-store"}, &plain, &bytes.Buffer{}); err != nil {
		t.Fatalf("no store: %v", err)
	}
	if err := run([]string{"-tiny", "-store", dir}, &cold, &bytes.Buffer{}); err != nil {
		t.Fatalf("cold store: %v", err)
	}
	if err := run([]string{"-tiny", "-store", dir}, &warm, &bytes.Buffer{}); err != nil {
		t.Fatalf("warm store: %v", err)
	}
	if !bytes.Equal(plain.Bytes(), cold.Bytes()) {
		t.Error("cold-store dump differs from uncached dump")
	}
	if !bytes.Equal(plain.Bytes(), warm.Bytes()) {
		t.Error("warm-store dump differs from uncached dump")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
}
