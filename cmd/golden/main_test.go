package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestTinyDumpSerialVsParallel diffs a tiny-matrix dump between one
// worker and many: the bytes must match exactly. This runs even in
// -short mode; the full-size equivalence lives in internal/sweep.
func TestTinyDumpSerialVsParallel(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-tiny", "-jobs", "1"}, &serial, &bytes.Buffer{}); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := run([]string{"-tiny", "-jobs", "6"}, &parallel, &bytes.Buffer{}); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatal("golden dump differs between -jobs 1 and -jobs 6")
	}
	// Sanity: the dump covers the full variant matrix.
	s := serial.String()
	for _, want := range []string{"\"plain\"", "\"auto\"", "\"manual\"", "\"icc\"", "\"indirect-only\"",
		"\"Haswell\"", "\"XeonPhi\"", "\"A57\"", "\"A53\""} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %s", want)
		}
	}
}

// TestStoredDumpBitIdentical runs the tiny dump three times — no
// store, cold store, warm store — and requires byte-identical output:
// the result cache must be invisible in the statistics.
func TestStoredDumpBitIdentical(t *testing.T) {
	dir := t.TempDir()
	var plain, cold, warm bytes.Buffer
	if err := run([]string{"-tiny", "-no-store"}, &plain, &bytes.Buffer{}); err != nil {
		t.Fatalf("no store: %v", err)
	}
	if err := run([]string{"-tiny", "-store", dir}, &cold, &bytes.Buffer{}); err != nil {
		t.Fatalf("cold store: %v", err)
	}
	if err := run([]string{"-tiny", "-store", dir}, &warm, &bytes.Buffer{}); err != nil {
		t.Fatalf("warm store: %v", err)
	}
	if !bytes.Equal(plain.Bytes(), cold.Bytes()) {
		t.Error("cold-store dump differs from uncached dump")
	}
	if !bytes.Equal(plain.Bytes(), warm.Bytes()) {
		t.Error("warm-store dump differs from uncached dump")
	}
}

// TestHWPFLabelling pins the -hwpf record-labelling contract: a
// single-model dump (the default, and an explicit -hwpf stride, which
// behaves identically on every preset machine) omits the HWPF field
// entirely — keeping such dumps byte-identical to the pre-hwpf engine,
// the refactor-diffing property golden exists for — while a
// multi-model dump labels every record with its effective model so
// same-named systems stay distinguishable.
func TestHWPFLabelling(t *testing.T) {
	var def, stride, multi bytes.Buffer
	if err := run([]string{"-tiny"}, &def, &bytes.Buffer{}); err != nil {
		t.Fatalf("default: %v", err)
	}
	if err := run([]string{"-tiny", "-hwpf", "stride"}, &stride, &bytes.Buffer{}); err != nil {
		t.Fatalf("-hwpf stride: %v", err)
	}
	if !bytes.Equal(def.Bytes(), stride.Bytes()) {
		t.Error("-hwpf stride dump differs from the default dump")
	}
	if strings.Contains(def.String(), "\"HWPF\"") {
		t.Error("single-model dump carries HWPF labels")
	}

	if err := run([]string{"-tiny", "-hwpf", "default,none"}, &multi, &bytes.Buffer{}); err != nil {
		t.Fatalf("-hwpf default,none: %v", err)
	}
	s := multi.String()
	for _, want := range []string{"\"HWPF\": \"stride\"", "\"HWPF\": \"none\""} {
		if !strings.Contains(s, want) {
			t.Errorf("multi-model dump missing %s", want)
		}
	}
	if n, m := strings.Count(s, "\"HWPF\""), strings.Count(s, "\"Workload\""); n != m {
		t.Errorf("multi-model dump labels %d of %d records", n, m)
	}

	if err := run([]string{"-hwpf", "warp"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown hardware prefetcher accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-exec", "jit"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown exec mode accepted")
	}
}

// TestReplayDumpBitIdentical is the tentpole acceptance check at the
// command level: a full tiny-matrix replay dump must be byte-for-byte
// identical to the direct dump, serial and parallel alike. The record
// format carries no mode field, so any statistics divergence — however
// small — shows up as a diff.
func TestReplayDumpBitIdentical(t *testing.T) {
	var direct, replay1, replay8 bytes.Buffer
	if err := run([]string{"-tiny", "-jobs", "4"}, &direct, &bytes.Buffer{}); err != nil {
		t.Fatalf("direct: %v", err)
	}
	if err := run([]string{"-tiny", "-exec", "replay", "-jobs", "1"}, &replay1, &bytes.Buffer{}); err != nil {
		t.Fatalf("replay -jobs 1: %v", err)
	}
	if err := run([]string{"-tiny", "-exec", "replay", "-jobs", "8"}, &replay8, &bytes.Buffer{}); err != nil {
		t.Fatalf("replay -jobs 8: %v", err)
	}
	if !bytes.Equal(direct.Bytes(), replay1.Bytes()) {
		t.Error("replay dump (-jobs 1) differs from direct dump")
	}
	if !bytes.Equal(direct.Bytes(), replay8.Bytes()) {
		t.Error("replay dump (-jobs 8) differs from direct dump")
	}
}

// TestReplayDumpStoreModes: the replay path composed with the store —
// cold (records and persists traces), warm-from-direct (result keys
// ignore the mode, so a direct-warmed store answers every replay cell),
// and warm-traces-cold-results — all byte-identical to the uncached
// direct dump.
func TestReplayDumpStoreModes(t *testing.T) {
	dir := t.TempDir()
	var plain, cold, warm bytes.Buffer
	if err := run([]string{"-tiny", "-no-store"}, &plain, &bytes.Buffer{}); err != nil {
		t.Fatalf("no store: %v", err)
	}
	if err := run([]string{"-tiny", "-exec", "replay", "-store", dir}, &cold, &bytes.Buffer{}); err != nil {
		t.Fatalf("cold store: %v", err)
	}
	if err := run([]string{"-tiny", "-exec", "replay", "-store", dir}, &warm, &bytes.Buffer{}); err != nil {
		t.Fatalf("warm store: %v", err)
	}
	if !bytes.Equal(plain.Bytes(), cold.Bytes()) {
		t.Error("cold-store replay dump differs from uncached direct dump")
	}
	if !bytes.Equal(plain.Bytes(), warm.Bytes()) {
		t.Error("warm-store replay dump differs from uncached direct dump")
	}

	// A direct dump over the replay-warmed store: served entirely from
	// the shared result key space, still identical.
	var direct bytes.Buffer
	if err := run([]string{"-tiny", "-store", dir}, &direct, &bytes.Buffer{}); err != nil {
		t.Fatalf("direct over warm store: %v", err)
	}
	if !bytes.Equal(plain.Bytes(), direct.Bytes()) {
		t.Error("direct dump over a replay-warmed store differs")
	}
}
