// Command swpfsim executes a function from a textual-IR module on one
// of the simulated microarchitectures and reports cycles plus
// memory-system statistics.
//
// Usage:
//
//	swpfsim -system Haswell -fn kernel file.ir 1024 4096
//
// Trailing arguments after the file are the function's integer
// arguments. Combine with swpfc to measure the effect of the pass:
//
//	swpfsim -fn sum kernel.ir 100
//	swpfc kernel.ir | swpfsim -fn sum - 100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/uarch"
)

func main() {
	var (
		system = flag.String("system", "Haswell", "machine: Haswell, XeonPhi, A57, A53, generic")
		fn     = flag.String("fn", "main", "function to execute")
		limit  = flag.Uint64("max-instrs", 0, "dynamic instruction budget (0 = default)")
		trace  = flag.Int("trace", 0, "dump the last N memory accesses to stderr")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fatal(fmt.Errorf("usage: swpfsim [flags] <file.ir|-> [args...]"))
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := ir.Parse(src)
	if err != nil {
		fatal(err)
	}
	if err := mod.Verify(); err != nil {
		fatal(err)
	}

	var cfg *sim.Config
	if *system == "generic" {
		cfg = sim.DefaultConfig()
	} else if cfg = uarch.ByName(*system); cfg == nil {
		fatal(fmt.Errorf("unknown system %q", *system))
	}

	args := make([]int64, flag.NArg()-1)
	for i := 1; i < flag.NArg(); i++ {
		v, err := strconv.ParseInt(flag.Arg(i), 0, 64)
		if err != nil {
			fatal(fmt.Errorf("argument %d: %w", i, err))
		}
		args[i-1] = v
	}

	mach := interp.New(mod, cfg)
	mach.MaxInstrs = *limit
	var tracer *sim.Tracer
	if *trace > 0 {
		tracer = sim.NewTracer(*trace)
		mach.Core.Hierarchy().SetTracer(tracer)
	}
	result, err := mach.Run(*fn, args...)
	if err != nil {
		fatal(err)
	}
	if tracer != nil {
		fmt.Fprintf(os.Stderr, "last %d of %d memory accesses:\n%s",
			len(tracer.Events()), tracer.Total(), tracer.Dump())
	}
	st := mach.Stats()
	hier := mach.Core.Hierarchy()

	fmt.Printf("result:          %d\n", result)
	fmt.Printf("system:          %s\n", cfg.Name)
	fmt.Printf("cycles:          %.0f\n", st.Cycles)
	fmt.Printf("instructions:    %d (IPC %.2f)\n", st.Instructions,
		float64(st.Instructions)/st.Cycles)
	fmt.Printf("loads/stores:    %d / %d\n", st.Loads, st.Stores)
	fmt.Printf("sw prefetches:   %d\n", st.Prefetches)
	for _, c := range hier.Caches() {
		cc := c.Config()
		total := c.Hits + c.Misses
		if total == 0 {
			continue
		}
		fmt.Printf("%-4s hit rate:   %.1f%% (%d/%d)\n", cc.Name,
			100*float64(c.Hits)/float64(total), c.Hits, total)
	}
	fmt.Printf("DRAM accesses:   %d (%d bytes)\n", hier.DRAMAccesses, hier.DRAMBytes)
	fmt.Printf("TLB walks:       %d\n", hier.TLBStats().Walks)
	fmt.Printf("load stall cyc:  %.0f\n", hier.LoadStallCycles)
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swpfsim:", err)
	os.Exit(1)
}
