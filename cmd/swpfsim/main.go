// Command swpfsim executes a function from a textual-IR module on one
// of the simulated microarchitectures and reports cycles plus
// memory-system statistics.
//
// Usage:
//
//	swpfsim -system Haswell -fn kernel file.ir 1024 4096
//
// Trailing arguments after the file are the function's integer
// arguments. Combine with swpfc to measure the effect of the pass:
//
//	swpfsim -fn sum kernel.ir 100
//	swpfc kernel.ir | swpfsim -fn sum - 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/uarch"
)

// errParse marks a flag-parsing failure the FlagSet has already
// reported to stderr.
var errParse = errors.New("flag parse")

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the problem
	default:
		fmt.Fprintln(os.Stderr, "swpfsim:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags and file access are
// parameterised on the given streams.
func run(argv []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system = fs.String("system", "Haswell", "machine: Haswell, XeonPhi, A57, A53, generic")
		fn     = fs.String("fn", "main", "function to execute")
		limit  = fs.Uint64("max-instrs", 0, "dynamic instruction budget (0 = default)")
		trace  = fs.Int("trace", 0, "dump the last N memory accesses to stderr")
	)
	if err := fs.Parse(argv); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}
	if fs.NArg() < 1 {
		return errors.New("usage: swpfsim [flags] <file.ir|-> [args...]")
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	mod, err := ir.Parse(src)
	if err != nil {
		return err
	}
	if err := mod.Verify(); err != nil {
		return err
	}

	var cfg *sim.Config
	if *system == "generic" {
		cfg = sim.DefaultConfig()
	} else if cfg = uarch.ByName(*system); cfg == nil {
		return fmt.Errorf("unknown system %q", *system)
	}

	args := make([]int64, fs.NArg()-1)
	for i := 1; i < fs.NArg(); i++ {
		v, err := strconv.ParseInt(fs.Arg(i), 0, 64)
		if err != nil {
			return fmt.Errorf("argument %d: %w", i, err)
		}
		args[i-1] = v
	}

	mach := interp.New(mod, cfg)
	mach.MaxInstrs = *limit
	var tracer *sim.Tracer
	if *trace > 0 {
		tracer = sim.NewTracer(*trace)
		mach.Core.Hierarchy().SetTracer(tracer)
	}
	result, err := mach.Run(*fn, args...)
	if err != nil {
		return err
	}
	if tracer != nil {
		fmt.Fprintf(stderr, "last %d of %d memory accesses:\n%s",
			len(tracer.Events()), tracer.Total(), tracer.Dump())
	}
	st := mach.Stats()
	hier := mach.Core.Hierarchy()

	fmt.Fprintf(stdout, "result:          %d\n", result)
	fmt.Fprintf(stdout, "system:          %s\n", cfg.Name)
	fmt.Fprintf(stdout, "cycles:          %.0f\n", st.Cycles)
	fmt.Fprintf(stdout, "instructions:    %d (IPC %.2f)\n", st.Instructions,
		float64(st.Instructions)/st.Cycles)
	fmt.Fprintf(stdout, "loads/stores:    %d / %d\n", st.Loads, st.Stores)
	fmt.Fprintf(stdout, "sw prefetches:   %d\n", st.Prefetches)
	for _, c := range hier.Caches() {
		cc := c.Config()
		total := c.Hits + c.Misses
		if total == 0 {
			continue
		}
		fmt.Fprintf(stdout, "%-4s hit rate:   %.1f%% (%d/%d)\n", cc.Name,
			100*float64(c.Hits)/float64(total), c.Hits, total)
	}
	fmt.Fprintf(stdout, "DRAM accesses:   %d (%d bytes)\n", hier.DRAMAccesses, hier.DRAMBytes)
	fmt.Fprintf(stdout, "TLB walks:       %d\n", hier.TLBStats().Walks)
	fmt.Fprintf(stdout, "load stall cyc:  %.0f\n", hier.LoadStallCycles)
	return nil
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
