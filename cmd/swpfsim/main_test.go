package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// selfContained allocates and initialises its own arrays, so the
// simulator can run it with no external setup: buckets[i%m]++ over a
// pseudo-random key array, returning a checksum.
const selfContained = `module t
func kernel(%n: i64) -> i64 {
entry:
  %keys = alloc %n, 8
  %buckets = alloc %n, 8
  br init
init:
  %i = phi i64 [entry: 0, init: %i2]
  %h = mul %i, 2654435761
  %k = rem %h, %n
  %kp = gep %keys, %i, 8
  store i64, %kp, %k
  %i2 = add %i, 1
  %c = cmp lt %i2, %n
  cbr %c, init, loop
loop:
  %j = phi i64 [init: 0, loop: %j2]
  %acc = phi i64 [init: 0, loop: %acc2]
  %jp = gep %keys, %j, 8
  %kj = load i64, %jp
  %bp = gep %buckets, %kj, 8
  %old = load i64, %bp
  %new = add %old, 1
  store i64, %bp, %new
  %acc2 = add %acc, %new
  %j2 = add %j, 1
  %c2 = cmp lt %j2, %n
  cbr %c2, loop, done
done:
  ret %acc2
}
`

func writeKernel(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "k.ir")
	if err := os.WriteFile(path, []byte(selfContained), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunsKernelFile(t *testing.T) {
	path := writeKernel(t)
	var out bytes.Buffer
	if err := run([]string{"-fn", "kernel", path, "256"}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"result:", "cycles:", "instructions:", "DRAM accesses:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSystemsAgreeOnResult(t *testing.T) {
	path := writeKernel(t)
	var results []string
	for _, sys := range []string{"generic", "Haswell", "A53"} {
		var out bytes.Buffer
		if err := run([]string{"-system", sys, "-fn", "kernel", path, "128"}, strings.NewReader(""), &out, &bytes.Buffer{}); err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		line, _, _ := strings.Cut(out.String(), "\n")
		results = append(results, line)
	}
	for _, r := range results[1:] {
		if r != results[0] {
			t.Errorf("functional result differs across systems: %v", results)
		}
	}
}

func TestStdinDash(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fn", "kernel", "-", "64"}, strings.NewReader(selfContained), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("stdin run: %v", err)
	}
	if !strings.Contains(out.String(), "result:") {
		t.Errorf("missing result line:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	path := writeKernel(t)
	cases := [][]string{
		{},                            // no file
		{"-system", "M4", path, "8"},  // unknown system
		{"-fn", "nope", path, "8"},    // unknown function
		{"-fn", "kernel", path, "xy"}, // bad argument
	}
	for _, argv := range cases {
		if err := run(argv, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("argv %v accepted", argv)
		}
	}
}

func TestMaxInstrsBudget(t *testing.T) {
	path := writeKernel(t)
	err := run([]string{"-fn", "kernel", "-max-instrs", "100", path, "4096"},
		strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("expected budget exhaustion, got %v", err)
	}
}
