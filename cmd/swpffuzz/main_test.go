package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/ir"
)

// TestCleanCampaign: a healthy pass survives a seeded campaign and the
// run reports the exact kernel count — the determinism CI's smoke job
// relies on.
func TestCleanCampaign(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seeds", "25", "-seed", "1", "-budget", "5m"}, &out, &errBuf); err != nil {
		t.Fatalf("clean campaign failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "25 kernels checked, no failures") {
		t.Errorf("missing summary line:\n%s", out.String())
	}

	// The per-phase breakdown: every phase did work, and the replay
	// phase covered exactly as many cells as the direct sim phase ran
	// serially (half the sim tally, which counts serial + parallel).
	text := out.String()
	i := strings.Index(text, "checks: ")
	if i < 0 {
		t.Fatalf("missing check breakdown:\n%s", text)
	}
	var c gen.Counts
	if _, err := fmt.Sscanf(text[i:], "checks: verify=%d interp=%d sim=%d replay=%d",
		&c.Verify, &c.Interp, &c.Sim, &c.Replay); err != nil {
		t.Fatalf("unparseable breakdown %q: %v", strings.TrimSpace(text[i:]), err)
	}
	if c.Verify == 0 || c.Interp == 0 || c.Sim == 0 || c.Replay == 0 {
		t.Errorf("a phase did no work: %s", c)
	}
	if c.Sim != 2*c.Replay {
		t.Errorf("sim=%d is not twice replay=%d (serial+parallel vs one replay sweep)", c.Sim, c.Replay)
	}
}

// TestPlantedClampBugCaughtAndMinimized is the acceptance check for
// the whole harness: injecting an off-by-one into the pass's §4.2
// clamp must be caught by the campaign, minimized to a near-minimal
// kernel, and written out as a parseable reproduction.
func TestPlantedClampBugCaughtAndMinimized(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-seeds", "50", "-seed", "1", "-budget", "5m",
		"-clamp-slack", "1", "-minimize", "-out", dir,
	}, &out, &errBuf)
	if err == nil {
		t.Fatalf("planted bug not caught:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "FAILURE") || !strings.Contains(text, "minimized to") {
		t.Fatalf("report lacks failure/minimization:\n%s", text)
	}

	// The minimized vector is near-minimal: the bug fires on any
	// unit-stride kernel with one index load, so minimization must
	// reach the floor of every shrinkable axis.
	i := strings.Index(text, "minimized to ")
	canon := strings.TrimSpace(strings.SplitN(text[i+len("minimized to "):], "\n", 2)[0])
	for _, want := range []string{"shape=flat", "rows=4", "indir=1", "stride=1", "hash=false", "body=reduce", "seed=1"} {
		if !strings.Contains(canon, want) {
			t.Errorf("minimized params %q missing %q", canon, want)
		}
	}

	// The repro file exists and embeds IR that parses back.
	matches, globErr := filepath.Glob(filepath.Join(dir, "*.repro"))
	if globErr != nil || len(matches) != 1 {
		t.Fatalf("expected one repro file, got %v (%v)", matches, globErr)
	}
	data, readErr := os.ReadFile(matches[0])
	if readErr != nil {
		t.Fatal(readErr)
	}
	body := string(data)
	if !strings.Contains(body, "# params: "+canon) {
		t.Errorf("repro file does not carry the minimized params:\n%s", body)
	}
	irText := body[strings.Index(body, "module"):]
	if _, parseErr := ir.Parse(irText); parseErr != nil {
		t.Errorf("repro IR does not parse: %v", parseErr)
	}
}

// TestBudgetExpiry: a zero budget stops before checking anything and
// still exits cleanly.
func TestBudgetExpiry(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-seeds", "10", "-budget", "0s"}, &out, &errBuf); err != nil {
		t.Fatalf("expired budget should not be an error: %v", err)
	}
	if !strings.Contains(out.String(), "budget") || !strings.Contains(out.String(), "0 kernels") {
		t.Errorf("missing budget-expiry report:\n%s", out.String())
	}
}

// TestBadFlagRejected keeps the flag surface honest.
func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestReproRoundTrip: the canonical params line in a report names the
// same kernel (same module, same checksum) when fed back through
// Generate — the promote-to-corpus workflow of docs/testing.md.
func TestReproRoundTrip(t *testing.T) {
	p := gen.Random(gen.NewRand(99))
	k := gen.Generate(p)
	k2 := gen.Generate(p.Normalize())
	if k.Want != k2.Want || k.Build().String() != k2.Build().String() {
		t.Error("params do not round-trip through Generate")
	}
}
