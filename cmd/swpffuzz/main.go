// Command swpffuzz runs differential-fuzzing campaigns over generated
// kernels (internal/gen): each drawn kernel is checked by the full
// oracle — verifier acceptance, interpreter bit-identity with and
// without the auto-prefetch pass at every look-ahead/depth/hoist
// variant, simulator statistics invariants across machines x
// hardware-prefetcher models x parallel re-runs, and record/replay
// equivalence (each kernel is recorded once and the trace retimed on
// every sim cell, which must reproduce the direct statistics
// bit-for-bit). The first violation stops the campaign; with -minimize
// the failing parameter vector is shrunk to a near-minimal
// reproduction first. The campaign summary reports the per-phase check
// breakdown (verify/interp/sim/replay).
//
//	swpffuzz -seeds 500 -budget 30s            # bounded campaign
//	swpffuzz -seeds 40 -budget 60s             # CI smoke (deterministic)
//	swpffuzz -seeds 200 -minimize -out repro/  # save minimized repros
//
// A campaign is deterministic for a fixed -seed/-seeds pair as long as
// the budget does not expire: kernel i of seed s is always the same
// kernel. -clamp-slack injects a deliberate off-by-one into the pass's
// §4.2 fault-avoidance clamp (see prefetch.Options.TestClampSlack), a
// self-test that the harness actually detects unsafe transforms.
//
// On failure the repro file written to -out (or stdout without -out)
// holds the canonical parameter vector, the failure, and the kernel's
// IR — ready to be promoted into the internal/gen seed corpus (see
// docs/testing.md).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/prefetch"
)

// Exit codes: 0 = campaign clean, 1 = usage or I/O error, 2 = a
// differential failure was found — distinct so callers (and CI's
// planted-bug self-test) can tell "the oracle tripped" from "the tool
// broke".
func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	case errors.Is(err, errFailure):
		fmt.Fprintln(os.Stderr, "swpffuzz:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "swpffuzz:", err)
		os.Exit(1)
	}
}

// errFailure marks a differential failure (as opposed to a usage or
// I/O error); the campaign found what it hunts for.
var errFailure = errors.New("differential failure")

// run is the testable body of the command.
func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpffuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seeds      = fs.Int("seeds", 100, "number of kernels to draw and check")
		seed       = fs.Uint64("seed", 1, "master seed; a fixed seed draws a fixed kernel sequence")
		budget     = fs.Duration("budget", 30*time.Second, "wall-clock budget; the campaign stops early when it expires")
		minimize   = fs.Bool("minimize", false, "shrink a failing kernel before reporting")
		clampSlack = fs.Int64("clamp-slack", 0, "fault injection: widen the pass's §4.2 clamp by this many iterations (self-test)")
		outDir     = fs.String("out", "", "directory for failure reproductions (default: repro to stdout only)")
		verbose    = fs.Bool("v", false, "log every kernel checked (structured, to stderr)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	log := obs.Discard()
	if *verbose {
		log = slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}

	o := gen.DefaultOracle()
	if *clampSlack != 0 {
		o.PassTweak = func(opts *prefetch.Options) { opts.TestClampSlack = *clampSlack }
	}

	r := gen.NewRand(*seed)
	deadline := time.Now().Add(*budget)
	checked := 0
	for i := 0; i < *seeds; i++ {
		if !time.Now().Before(deadline) {
			fmt.Fprintf(stdout, "swpffuzz: budget %v expired after %d kernels\n", *budget, checked)
			break
		}
		p := gen.Random(r)
		k := gen.Generate(p)
		log.Debug("kernel", "i", i, "params", p.Canonical())
		fail := o.Check(k)
		if fail == nil {
			checked++
			continue
		}

		fmt.Fprintf(stdout, "swpffuzz: FAILURE on kernel #%d after %d clean kernels\n", i, checked)
		fmt.Fprintf(stdout, "  %v\n", fail)
		if *minimize {
			min, minFail := o.Minimize(p)
			if minFail != nil {
				p, fail = min, minFail
				fmt.Fprintf(stdout, "swpffuzz: minimized to %s\n", p.Canonical())
				fmt.Fprintf(stdout, "  %v\n", minFail)
			}
		}
		report := reproReport(p, fail)
		if *outDir != "" {
			path, err := writeRepro(*outDir, p, report)
			if err != nil {
				return fmt.Errorf("writing repro: %w", err)
			}
			fmt.Fprintf(stdout, "swpffuzz: repro written to %s\n", path)
		} else {
			fmt.Fprint(stdout, report)
		}
		fmt.Fprintf(stdout, "swpffuzz: checks before failure: %s\n", o.Counts)
		return fmt.Errorf("%w after %d clean kernels: %v", errFailure, checked, fail)
	}
	fmt.Fprintf(stdout, "swpffuzz: %d kernels checked, no failures (seed=%d)\n", checked, *seed)
	fmt.Fprintf(stdout, "swpffuzz: %d checks: %s\n", o.Counts.Total(), o.Counts)
	return nil
}

// reproReport renders a self-contained reproduction: the canonical
// parameter vector (feed it back through gen.Generate), the failure,
// and the kernel IR.
func reproReport(p gen.Params, fail *gen.Failure) string {
	return fmt.Sprintf("# swpffuzz reproduction\n# params: %s\n# failure: %v\n\n%s",
		p.Canonical(), fail, gen.Generate(p).Build().String())
}

// writeRepro stores the report under dir, named by the kernel id.
func writeRepro(dir string, p gen.Params, report string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, gen.Generate(p).Name+".repro")
	return path, os.WriteFile(path, []byte(report), 0o644)
}
