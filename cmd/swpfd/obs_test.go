package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestMetricsEndpoint drives a one-local-worker daemon through a
// submission and checks the observability surface: /metrics agrees
// with /fleet, the middleware stamps request IDs, /debug/vars serves
// JSON, and pprof stays unmounted without -debug.
func TestMetricsEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServerCfg(config{cache: st, objects: st, stderr: &bytes.Buffer{}}))
	t.Cleanup(ts.Close)

	id, cells := submit(t, ts, tinySpec)
	if final := poll(t, ts, id); final.State != stateDone {
		t.Fatalf("job did not finish: %+v", final)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if rid := resp.Header.Get(obs.RequestIDHeader); rid == "" {
		t.Error("no request-ID header on the response")
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	code, body := fetch(t, ts, "/fleet")
	if code != http.StatusOK {
		t.Fatalf("GET /fleet = %d", code)
	}
	var fs FleetStatus
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Queue.Completed != int64(cells) {
		t.Fatalf("completed = %d, want %d", fs.Queue.Completed, cells)
	}
	for name, want := range map[string]float64{
		"swpf_queue_completed_total":    float64(fs.Queue.Completed),
		"swpf_queue_pending":            0,
		"swpf_store_puts_total":         float64(fs.Store.Puts),
		"swpf_fleet_cell_seconds_count": float64(fs.Queue.Completed),
	} {
		s := obs.Find(samples, name)
		if s == nil || s.Value != want {
			t.Errorf("%s: %+v, want %v", name, s, want)
		}
	}
	// The local worker simulated every cell through the instrumented
	// sweep engine; direct + recorded + replayed must cover the grid.
	var simulated float64
	for _, source := range []string{"direct", "recorded", "replayed"} {
		if s := obs.Find(samples, "swpf_sweep_cells_total", obs.L("source", source)); s != nil {
			simulated += s.Value
		}
	}
	if simulated != float64(cells) {
		t.Errorf("sweep sources account for %v cells, want %d", simulated, cells)
	}
	// The middleware counted the submission under its route pattern.
	if s := obs.Find(samples, "swpf_http_requests_total",
		obs.L("route", "POST /sweep"), obs.L("class", "2xx")); s == nil || s.Value != 1 {
		t.Errorf("POST /sweep 2xx count: %+v", s)
	}

	// /debug/vars is the same registry as JSON.
	code, body = fetch(t, ts, "/debug/vars")
	if code != http.StatusOK || !json.Valid(body) {
		t.Errorf("GET /debug/vars = %d, valid JSON = %v", code, json.Valid(body))
	}

	// A caller-supplied request ID is honored, not replaced.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/meta", nil)
	req.Header.Set(obs.RequestIDHeader, "caller-id-1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(obs.RequestIDHeader); got != "caller-id-1" {
		t.Errorf("request ID not honored: %q", got)
	}

	// pprof is gated behind -debug.
	if code, _ := fetch(t, ts, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("GET /debug/pprof/ without -debug = %d, want 404", code)
	}
}

// TestDebugPprof: with the debug flag the standard profile index is
// mounted and served through the same middleware.
func TestDebugPprof(t *testing.T) {
	ts := httptest.NewServer(newServerCfg(config{localWorkers: -1, debug: true, stderr: &bytes.Buffer{}}))
	t.Cleanup(ts.Close)
	code, body := fetch(t, ts, "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ with -debug = %d", code)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index looks wrong: %.120s", body)
	}
}

// TestAccessLog: the middleware writes one slog line per request with
// rid, route, and status attributes.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logFlags := obs.LogFlags{Level: "info", Format: "text"}
	logger, err := logFlags.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServerCfg(config{localWorkers: -1, logger: logger, stderr: &bytes.Buffer{}}))
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/meta?quality=tiny", nil)
	req.Header.Set(obs.RequestIDHeader, "rid-under-test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	logged := buf.String()
	var line string
	for _, l := range strings.Split(logged, "\n") {
		if strings.Contains(l, "msg=http") && strings.Contains(l, "rid=rid-under-test") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no access-log line for the request:\n%s", logged)
	}
	for _, want := range []string{`route="GET /meta"`, "status=200", "method=GET"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line missing %s: %s", want, line)
		}
	}
}
