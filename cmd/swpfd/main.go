// Command swpfd is the sweep fabric's daemon: an HTTP service that
// executes experiment grids asynchronously on a shared cell queue
// (internal/fleet), backed by the content-addressed result store
// (internal/store). Submitting the same grid twice — or two grids that
// overlap, from any number of concurrent clients — costs one
// simulation per distinct cell fleet-wide; everything else is served
// from the store or attached to the already-live cell.
//
// Job API:
//
//	POST /sweep        submit a grid spec — or a JSON array of specs —
//	                   returns {"id", "cells"} (a list, for a list);
//	                   429 + Retry-After when the queue is full
//	POST /tune         submit a tune spec (internal/tune): search
//	                   (c, depth, hoist, hwpf) for the best speedup
//	                   over the no-prefetch baseline; returns {"id"} —
//	                   the job streams evaluation progress on /events
//	                   and serves its report on /results
//	GET  /jobs         list all jobs with status
//	GET  /jobs/{id}    one job's status and progress counts
//	GET  /jobs/{id}/events
//	                   live progress as Server-Sent Events; the stream
//	                   ends after the terminal event
//	GET  /results?id=ID[&format=csv|json]
//	                   a completed job's ResultSet (JSON records by
//	                   default, CSV on request)
//	GET  /meta[?quality=full|quick|tiny|gen]
//	                   enumerate every grid axis so specs can be built
//	                   without reading source
//
// Fleet API (worker processes; see worker.go and docs/fleet.md):
//
//	POST /fleet/lease      pull a batch of cells under an expiring lease
//	POST /fleet/complete   report a lease's results
//	POST /fleet/heartbeat  extend a lease
//	GET  /fleet            queue + store statistics
//	GET|PUT /objects/{key} the store-peer protocol (internal/store),
//	                       mounted when a store is attached
//
// Cells run on -local-workers in-process worker loops (default 1) plus
// any number of remote `swpfd -worker URL` processes pulling from
// /fleet. The queue dedupes cells by content address, bounds live
// cells (-max-pending, 429 on overflow), orders by submission priority,
// and requeues the cells of leases that stop heartbeating — a killed
// worker loses work, never results.
//
// The grid spec mirrors swpfbench's -sweep flags:
//
//	curl -s localhost:8077/sweep -d '{"workloads":"IS,CG","systems":"Haswell","variants":"plain,auto","quality":"quick"}'
//	curl -s localhost:8077/jobs/job-1
//	curl -s 'localhost:8077/results?id=job-1&format=csv'
//
// Flags: -addr (default 127.0.0.1:8077 — the API is unauthenticated,
// so non-loopback binds are an explicit choice; :0 picks an ephemeral
// port and prints it), -jobs (worker pool size per sweep),
// -store/-no-store (result cache; default $SWPF_STORE), -peer (store
// peer URL; default $SWPF_PEER), -local-workers, -lease-ttl,
// -lease-batch, -max-pending, and -worker URL (run as a fleet worker
// instead of a daemon). See docs/service.md and docs/fleet.md.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hwpf"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/tune"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	switch err := run(os.Args[1:], os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	default:
		fmt.Fprintln(os.Stderr, "swpfd:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until the listener fails — the testable
// part of the daemon is newServer, which httptest drives directly.
func run(argv []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "127.0.0.1:8077", "listen address (loopback by default; the API is unauthenticated)")
		jobs    = fs.Int("jobs", 0, "worker goroutines per sweep (0 = all CPUs)")
		worker  = fs.String("worker", "", "run as a fleet worker pulling cells from this coordinator URL instead of serving")
		name    = fs.String("name", "", "worker name reported to the coordinator (default swpfd-<pid>)")
		peer    = fs.String("peer", "", "store-peer URL for read-through/write-behind replication (default $"+store.PeerEnvVar+")")
		locals  = fs.Int("local-workers", 1, "in-process worker loops (0 = coordinate only, serve cells to remote workers)")
		ttl     = fs.Duration("lease-ttl", fleet.DefaultLeaseTTL, "fleet lease time-to-live between worker heartbeats")
		batch   = fs.Int("lease-batch", 8, "max cells per worker lease")
		pending = fs.Int("max-pending", fleet.DefaultMaxPending, "max live (pending+leased) cells before submissions get 429")
		debug   = fs.Bool("debug", false, "mount Go profiling endpoints under /debug/pprof/")
	)
	logFlags := obs.BindLogFlags(fs)
	resolveStore := store.BindFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	logger, err := logFlags.Logger(stderr)
	if err != nil {
		return err
	}
	if *worker != "" {
		return runWorker(*worker, *name, *jobs, *batch, logger)
	}
	st, err := resolveStore()
	if err != nil {
		return err
	}
	var cache sweep.Cache
	if st != nil {
		if p := *peer; p == "" {
			p = os.Getenv(store.PeerEnvVar)
			if p != "" {
				*peer = p
			}
		}
		if *peer != "" {
			if err := st.SetPeer(*peer, store.PeerOptions{}); err != nil {
				return err
			}
			logger.Info("store peer", "url", *peer)
		}
		cache = st
		logger.Info("store", "dir", st.Dir())
	} else if *peer != "" {
		return fmt.Errorf("-peer requires a result store (-store or $%s)", store.EnvVar)
	}
	// On the flag, 0 means coordinate-only; in config that is the -1
	// sentinel (config 0 selects the 1-worker default).
	lw := *locals
	if lw == 0 {
		lw = -1
	}
	h := newServerCfg(config{
		jobs:         *jobs,
		cache:        cache,
		objects:      st,
		localWorkers: lw,
		leaseBatch:   *batch,
		maxPending:   *pending,
		leaseTTL:     *ttl,
		stderr:       stderr,
		logger:       logger,
		debug:        *debug,
	})
	// Listen before announcing, so "-addr :0" logs the real port — the
	// e2e harness (and scripts) parse the addr attribute of this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())
	return http.Serve(ln, h)
}

// SweepSpec is the POST /sweep request body: the shared grid spec of
// internal/sweep, which is also what swpfbench's -sweep flags and
// swpfctl's submit flags build — one Validate/ToGrid for every
// surface. Empty selector strings mean each axis's default; Quality
// picks the workload pool — "full" (default), "quick", "tiny" (test
// sizes), or "gen" (randomly generated kernels, see internal/gen).
type SweepSpec = sweep.Spec

// poolFor resolves a quality to its memoized workload pool; "" means
// full. Shared by spec validation and the worker's cell resolver, so
// coordinator and workers agree on what every (quality, name) denotes.
func poolFor(quality string) ([]*workloads.Workload, error) {
	return workloads.PoolByQuality(quality)
}

// validateWireSpec applies the daemon's one restriction on top of the
// shared spec validation: ad-hoc generated kernels (gen/gen_seed)
// cannot travel over the fleet, because workers reconstruct cells by
// (quality, name) against their own memoized pools — an ad-hoc family
// has no pool to resolve from. Quality "gen" (the default generated
// family) works fleet-wide.
func validateWireSpec(sp SweepSpec) (sweep.Grid, error) {
	if sp.Gen != 0 || sp.GenSeed != 0 {
		return sweep.Grid{}, errors.New(errGenWire)
	}
	return sp.ToGrid()
}

// errGenWire is the 400 body for specs carrying gen/gen_seed, shared
// by POST /sweep and POST /tune.
const errGenWire = `spec fields "gen"/"gen_seed" are not supported by the daemon (workers resolve workloads by quality and name); use "quality": "gen" for the generated family`

// Job states. Submissions are admitted straight into the cell queue
// (or rejected with 429), so there is no queued state: a job is
// running until its last cell completes.
const (
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// maxJobs bounds retained jobs: once exceeded, the oldest *terminal*
// jobs (and their result sets) are evicted, after which their ids
// answer 404. Running jobs are never evicted. (Live cells are bounded
// separately by the queue's max-pending admission control.)
const maxJobs = 256

// job is one submitted sweep or tune search. A sweep job is backed by
// a fleet ticket, which holds all its dynamic state; a tune job is
// backed by a tuneJob (tune.go), which mirrors the ticket's progress
// and terminal-state contract — exactly one of the two is set.
type job struct {
	id       string
	spec     SweepSpec
	ticket   *fleet.Ticket
	tuneSpec *TuneSpec
	tune     *tuneJob
}

// terminal reports whether the job has finished (either way).
func (j *job) terminal() bool {
	if j.tune != nil {
		_, t := j.tune.snapshot()
		return t
	}
	_, t := j.ticket.ResultSet()
	return t
}

// JobStatus is the wire form of a job, served by GET /jobs{,/{id}}.
// Tune jobs additionally carry their full tune spec (search strategy
// and ladders) under "tune"; their done/total counts are evaluations,
// not grid cells.
type JobStatus struct {
	ID    string    `json:"id"`
	Spec  SweepSpec `json:"spec"`
	Tune  *TuneSpec `json:"tune,omitempty"`
	State string    `json:"state"`
	Total int       `json:"total"`
	Done  int       `json:"done"`
	Error string    `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	if j.tune != nil {
		ev, _ := j.tune.snapshot()
		_, errMsg, _ := j.tune.result()
		return JobStatus{
			ID:    j.id,
			Spec:  j.spec,
			Tune:  j.tuneSpec,
			State: ev.State,
			Total: ev.Total,
			Done:  ev.Done,
			Error: errMsg,
		}
	}
	done, total := j.ticket.Progress()
	st := JobStatus{
		ID:    j.id,
		Spec:  j.spec,
		State: stateRunning,
		Total: total,
		Done:  done,
	}
	if set, ok := j.ticket.ResultSet(); ok {
		if err := set.Err(); err != nil {
			st.State = stateFailed
			st.Error = err.Error()
		} else {
			st.State = stateDone
		}
	}
	return st
}

// config wires a server; the zero value of every field selects a sane
// default.
type config struct {
	jobs         int          // sweep worker-pool size per local worker
	cache        sweep.Cache  // result cache; nil = none
	objects      *store.Store // when non-nil, /objects/ serves the store-peer protocol
	localWorkers int          // in-process worker loops; -1 = none, 0 = 1
	leaseBatch   int
	maxPending   int
	leaseTTL     time.Duration
	stderr       io.Writer
	registry     *obs.Registry // metrics registry; nil = a fresh one
	logger       *slog.Logger  // structured log sink; nil = discard
	debug        bool          // mount /debug/pprof/
}

// server holds the cell queue, the job table and the sweep
// configuration shared by every submission.
type server struct {
	cfg    config
	queue  *fleet.Queue
	sweepM *sweep.Metrics
	tuneM  *tune.Metrics

	mu   sync.Mutex
	seq  int
	byID map[string]*job
	ids  []string // insertion order, for stable GET /jobs listings
}

// newServer builds a daemon handler with default fleet settings and
// one in-process worker — the single-node shape, and the shape most
// tests drive; cache may be nil.
func newServer(jobs int, cache sweep.Cache) http.Handler {
	return newServerCfg(config{jobs: jobs, cache: cache})
}

// newServerCfg builds the daemon's HTTP handler and starts its local
// worker loops. Every layer shares one metrics registry — the fleet
// queue, the store and its peer, the sweep engine and the tuner all
// register collectors or instruments on it, and the handler exposes it
// as GET /metrics (Prometheus text) and GET /debug/vars (JSON) behind
// the same middleware that instruments and access-logs every route.
func newServerCfg(cfg config) http.Handler {
	if cfg.localWorkers == 0 {
		cfg.localWorkers = 1
	} else if cfg.localWorkers < 0 {
		cfg.localWorkers = 0
	}
	if cfg.leaseBatch <= 0 {
		cfg.leaseBatch = 8
	}
	if cfg.stderr == nil {
		cfg.stderr = os.Stderr
	}
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	if cfg.logger == nil {
		cfg.logger = obs.Discard()
	}
	s := &server{
		cfg:    cfg,
		byID:   make(map[string]*job),
		sweepM: sweep.NewMetrics(cfg.registry),
		tuneM:  tune.NewMetrics(cfg.registry),
		queue: fleet.New(fleet.Options{
			Cache:      cfg.cache,
			MaxPending: cfg.maxPending,
			LeaseTTL:   cfg.leaseTTL,
			OnPutError: store.PutWarner(cfg.stderr),
			Registry:   cfg.registry,
		}),
	}
	if cfg.objects != nil {
		cfg.objects.Register(cfg.registry)
	}
	for i := 0; i < cfg.localWorkers; i++ {
		go s.localWorker(fmt.Sprintf("local-%d", i))
	}
	mux := http.NewServeMux()
	routes := []string{
		"POST /sweep",
		"POST /tune",
		"GET /jobs",
		"GET /jobs/{id}",
		"GET /jobs/{id}/events",
		"GET /results",
		"GET /meta",
		"POST /fleet/lease",
		"POST /fleet/complete",
		"POST /fleet/heartbeat",
		"GET /fleet",
		"GET /metrics",
		"GET /debug/vars",
	}
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("POST /tune", s.handleTune)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /meta", s.handleMeta)
	mux.HandleFunc("POST /fleet/lease", s.handleLease)
	mux.HandleFunc("POST /fleet/complete", s.handleComplete)
	mux.HandleFunc("POST /fleet/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	mux.Handle("GET /metrics", cfg.registry.Handler())
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		cfg.registry.WriteJSON(w)
	})
	if cfg.debug {
		routes = append(routes, "/debug/pprof/")
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if cfg.objects != nil {
		routes = append(routes, "/objects/")
		mux.Handle("/objects/", store.NewHandler(cfg.objects))
	}
	return obs.NewHTTPMetrics(cfg.registry, routes).Middleware(mux, cfg.logger)
}

// MetaWorkload is one selectable workload in the GET /meta listing.
type MetaWorkload struct {
	Name   string `json:"name"`
	Params string `json:"params"`
}

// MetaSystem is one machine in the GET /meta listing.
type MetaSystem struct {
	Name string `json:"name"`
	HWPF string `json:"hwpf_default"`
	Core string `json:"core_default"`
}

// MetaModel is one hardware-prefetcher or core-model axis value in
// GET /meta.
type MetaModel struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// MetaTune advertises the tuner's searchable axis bounds: the
// strategies POST /tune accepts and the default search ladders a spec
// with empty cs/depths/hoists gets (custom ladders may widen them).
// Variants lists what can be tuned — everything but the plain
// baseline.
type MetaTune struct {
	Strategies []string `json:"strategies"`
	Variants   []string `json:"variants"`
	Cs         []int64  `json:"cs"`
	Depths     []int    `json:"depths"`
	Hoists     []bool   `json:"hoists"`
}

// Meta is the GET /meta response: every axis a SweepSpec selects over,
// plus the tuner's searchable bounds.
type Meta struct {
	Qualities     []string                  `json:"qualities"`
	Workloads     map[string][]MetaWorkload `json:"workloads"`
	Systems       []MetaSystem              `json:"systems"`
	Variants      []string                  `json:"variants"`
	HWPrefetchers []MetaModel               `json:"hwprefetchers"`
	Cores         []MetaModel               `json:"cores"`
	Execs         []string                  `json:"execs"`
	Tune          MetaTune                  `json:"tune"`
}

// handleMeta enumerates the grid axes. ?quality restricts the workload
// listing to one pool (the first request for a quality constructs and
// memoizes that pool, which generates workload input data — a one-off
// cost per quality per process).
func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	qualities := []string{"full", "quick", "tiny", "gen"}
	if q := r.URL.Query().Get("quality"); q != "" {
		if _, err := poolFor(q); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		qualities = []string{q}
	}
	m := Meta{
		Qualities: []string{"full", "quick", "tiny", "gen"},
		Workloads: make(map[string][]MetaWorkload),
		Variants:  make([]string, 0, len(sweep.Variants())),
	}
	for _, q := range qualities {
		pool, _ := poolFor(q)
		var ws []MetaWorkload
		for _, wl := range pool {
			ws = append(ws, MetaWorkload{Name: wl.Name, Params: wl.Params})
		}
		m.Workloads[q] = ws
	}
	for _, cfg := range uarch.All() {
		m.Systems = append(m.Systems, MetaSystem{Name: cfg.Name, HWPF: cfg.HWPrefetcherName(), Core: cfg.CoreName()})
	}
	for _, v := range sweep.Variants() {
		m.Variants = append(m.Variants, string(v))
	}
	m.HWPrefetchers = append(m.HWPrefetchers, MetaModel{
		Name:        sweep.HWPrefetcherDefault,
		Description: "keep each system's own model",
	})
	for _, name := range hwpf.Names() {
		m.HWPrefetchers = append(m.HWPrefetchers, MetaModel{Name: name, Description: hwpf.Describe(name)})
	}
	m.Cores = append(m.Cores, MetaModel{
		Name:        sweep.CoreDefault,
		Description: "keep each system's own timing model",
	})
	for _, name := range sim.CoreModels() {
		m.Cores = append(m.Cores, MetaModel{Name: name, Description: sim.DescribeCoreModel(name)})
	}
	for _, e := range sweep.ExecModes() {
		m.Execs = append(m.Execs, string(e))
	}
	m.Tune = MetaTune{
		Strategies: tune.StrategyAxis().Names(),
		Cs:         tune.DefaultCs,
		Depths:     tune.DefaultDepths,
		Hoists:     tune.DefaultHoists,
	}
	for _, v := range sweep.Variants() {
		if v != core.VariantPlain {
			m.Tune.Variants = append(m.Tune.Variants, string(v))
		}
	}
	writeJSON(w, http.StatusOK, m)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// SubmitReply is one accepted submission in the POST /sweep response.
type SubmitReply struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
}

// handleSweep validates and submits a grid spec — or a JSON array of
// specs, admitted in order. Each spec becomes one job; the response
// returns immediately with id and cell count per job (a bare object
// for a bare spec, a list for a list). Overfull queue: 429 with a
// Retry-After header; specs already admitted from a list are reported
// in the error body's "submitted" field and keep running.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	specs, batch, err := decodeSpecs(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}

	// Validate every spec before admitting any: a bad spec in a batch
	// is a 400, not a half-submitted batch.
	type prepared struct {
		spec SweepSpec
		reqs []sweep.Request
		wire []fleet.CellSpec
	}
	preps := make([]prepared, 0, len(specs))
	for _, spec := range specs {
		grid, err := validateWireSpec(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		reqs := grid.Expand()
		wire := make([]fleet.CellSpec, len(reqs))
		for i, req := range reqs {
			if wire[i], err = fleet.SpecFor(spec.QualityName(), req); err != nil {
				writeError(w, http.StatusInternalServerError, "%v", err)
				return
			}
		}
		preps = append(preps, prepared{spec, reqs, wire})
	}

	replies := make([]SubmitReply, 0, len(preps))
	for _, p := range preps {
		ticket, err := s.queue.Submit(p.reqs, p.wire, p.spec.Priority)
		var full fleet.ErrQueueFull
		if errors.As(err, &full) {
			w.Header().Set("Retry-After", strconv.Itoa(int(full.RetryAfter.Seconds()+0.5)))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":     full.Error(),
				"submitted": replies,
			})
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.mu.Lock()
		s.seq++
		j := &job{id: "job-" + strconv.Itoa(s.seq), spec: p.spec, ticket: ticket}
		s.byID[j.id] = j
		s.ids = append(s.ids, j.id)
		s.evictLocked()
		s.mu.Unlock()
		replies = append(replies, SubmitReply{ID: j.id, Cells: len(p.reqs)})
	}
	if batch {
		writeJSON(w, http.StatusAccepted, replies)
		return
	}
	writeJSON(w, http.StatusAccepted, replies[0])
}

// decodeSpecs parses a POST /sweep body: one spec object, or an array
// of them; batch reports which form arrived, so the response can
// mirror it.
func decodeSpecs(body []byte) (specs []SweepSpec, batch bool, err error) {
	for _, c := range body {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		case '[':
			batch = true
		}
		break
	}
	if batch {
		err = json.Unmarshal(body, &specs)
		if err == nil && len(specs) == 0 {
			err = fmt.Errorf("empty spec list")
		}
		return specs, true, err
	}
	var spec SweepSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		return nil, false, err
	}
	return []SweepSpec{spec}, false, nil
}

// evictLocked drops the oldest terminal jobs (result sets included)
// while the table exceeds maxJobs; the caller holds s.mu.
func (s *server) evictLocked() {
	for i := 0; len(s.byID) > maxJobs && i < len(s.ids); {
		j := s.byID[s.ids[i]]
		if !j.terminal() {
			i++
			continue
		}
		delete(s.byID, s.ids[i])
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

func (s *server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*job, 0, len(s.ids))
	for _, id := range s.ids {
		list = append(list, s.byID[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(list))
	for i, j := range list {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// Event is one GET /jobs/{id}/events payload: a progress snapshot;
// the terminal event carries the job's final state and closes the
// stream.
type Event struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	State string `json:"state"`
}

// handleEvents streams a job's progress as Server-Sent Events: one
// `data:` line per notification (counts are monotonic, intermediate
// events may be coalesced), ending with the terminal done/failed
// event. A subscriber joining a finished job gets exactly the terminal
// event.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.tune != nil {
		s.handleTuneEvents(w, r, j)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := j.ticket.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case p := <-ch:
			ev := Event{Done: p.Done, Total: p.Total, State: stateRunning}
			if p.Finished {
				// The ticket is finished, so status() is terminal.
				ev.State = j.status().State
			}
			if _, err := io.WriteString(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends the \n
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			fl.Flush()
			if p.Finished {
				return
			}
		}
	}
}

// handleResults streams a completed job's result set through the
// ResultSet emitters: JSON records by default, CSV with format=csv.
func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	j := s.lookup(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if j.tune != nil {
		s.handleTuneResults(w, r, j)
		return
	}
	set, finished := j.ticket.ResultSet()
	if !finished {
		done, total := j.ticket.Progress()
		writeError(w, http.StatusConflict, "job %s not finished (%d/%d cells)", id, done, total)
		return
	}
	if err := set.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, "job %s failed: %v", id, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		set.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		set.WriteCSV(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (have json, csv)", format)
	}
}

// LeaseRequest is the POST /fleet/lease body.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// handleLease hands the worker a batch of cells, or 204 when nothing
// is pending (the worker polls again).
func (s *server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease request missing worker name")
		return
	}
	if req.Max <= 0 {
		req.Max = s.cfg.leaseBatch
	}
	l := s.queue.Lease(req.Worker, req.Max)
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, l)
}

// CompleteRequest is the POST /fleet/complete body.
type CompleteRequest struct {
	Lease   string             `json:"lease"`
	Worker  string             `json:"worker"`
	Results []fleet.CellResult `json:"results"`
}

func (s *server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding completion: %v", err)
		return
	}
	accepted, dropped := s.queue.Complete(req.Lease, req.Worker, req.Results)
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted, "dropped": dropped})
}

// HeartbeatRequest is the POST /fleet/heartbeat body.
type HeartbeatRequest struct {
	Lease  string `json:"lease"`
	Worker string `json:"worker"`
}

func (s *server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding heartbeat: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": s.queue.Heartbeat(req.Lease, req.Worker)})
}

// FleetStatus is the GET /fleet response.
type FleetStatus struct {
	Queue fleet.Stats      `json:"queue"`
	Store *store.Stats     `json:"store,omitempty"`
	Peer  *store.PeerStats `json:"peer,omitempty"`
}

func (s *server) handleFleet(w http.ResponseWriter, r *http.Request) {
	out := FleetStatus{Queue: s.queue.Stats()}
	if s.cfg.objects != nil {
		st := s.cfg.objects.Stats()
		out.Store = &st
		if ps, ok := s.cfg.objects.PeerStats(); ok {
			out.Peer = &ps
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// traceOnlyCache is the local workers' view of the daemon cache:
// result Gets and Puts are no-ops — the queue already probed at
// submission, and the coordinator persists each distinct cell exactly
// once at completion — while trace traffic passes through, so replay
// groups still record once per store lifetime.
type traceOnlyCache struct{ tc sweep.TraceCache }

func (c traceOnlyCache) Get(sweep.Request) (*core.Result, bool) { return nil, false }
func (c traceOnlyCache) Put(sweep.Request, *core.Result) error  { return nil }
func (c traceOnlyCache) GetTrace(r sweep.Request) (*trace.Trace, bool) {
	return c.tc.GetTrace(r)
}
func (c traceOnlyCache) PutTrace(r sweep.Request, t *trace.Trace) error {
	return c.tc.PutTrace(r, t)
}

// workerCache builds the cache a local worker runs under.
func (s *server) workerCache() sweep.Cache {
	if tc, ok := s.cfg.cache.(sweep.TraceCache); ok {
		return traceOnlyCache{tc}
	}
	return nil
}

// localWorker is an in-process fleet worker: lease, execute, complete,
// forever. It heartbeats like a remote worker so long batches survive
// short lease TTLs, and it reports through the same Complete path — the
// coordinator cannot tell local and remote workers apart.
func (s *server) localWorker(name string) {
	cache := s.workerCache()
	log := s.cfg.logger.With("worker", name)
	for {
		l := s.queue.Lease(name, s.cfg.leaseBatch)
		if l == nil {
			s.queue.WaitWork(time.Second)
			continue
		}
		log.Debug("lease", "lease", l.ID, "cells", len(l.Cells))
		stop := make(chan struct{})
		go func() {
			t := time.NewTicker(heartbeatEvery(l.TTL()))
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					s.queue.Heartbeat(l.ID, name)
				}
			}
		}()
		runner := sweep.Runner{
			Jobs:       s.cfg.jobs,
			Cache:      cache,
			Metrics:    s.sweepM,
			OnPutError: store.PutWarner(s.cfg.stderr),
		}
		start := time.Now()
		set, _ := runner.Execute(l.Requests())
		close(stop)
		accepted, dropped := s.queue.Complete(l.ID, name, cellResults(l, set))
		log.Debug("complete",
			"lease", l.ID, "accepted", accepted, "dropped", dropped,
			"dur", time.Since(start).Round(time.Microsecond).String())
	}
}

// heartbeatEvery picks a heartbeat interval safely inside a lease TTL.
func heartbeatEvery(ttl time.Duration) time.Duration {
	every := ttl / 3
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	return every
}

// cellResults converts an executed lease into a completion report;
// Execute returns outcomes in request order, which matches the lease's
// cell order.
func cellResults(l *fleet.Lease, set *sweep.ResultSet) []fleet.CellResult {
	out := make([]fleet.CellResult, len(set.Outcomes))
	for i, o := range set.Outcomes {
		out[i] = fleet.CellResult{Key: l.Cells[i].Key}
		if o.Err != nil {
			out[i].Err = o.Err.Error()
		} else {
			d := fleet.ResultDataOf(o.Result)
			out[i].Result = &d
		}
	}
	return out
}
