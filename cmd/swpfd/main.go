// Command swpfd is a long-running HTTP service that executes
// experiment grids asynchronously: the sweep engine's worker pool and
// the content-addressed result store (internal/store), behind a small
// job API. Submitting the same grid twice — or two grids that overlap
// — costs one simulation per distinct cell ever seen; everything else
// is served from the store.
//
// API:
//
//	POST /sweep        submit a grid spec; returns {"id", "cells"}
//	GET  /jobs         list all jobs with status
//	GET  /jobs/{id}    one job's status and progress counts
//	GET  /results?id=ID[&format=csv|json]
//	                   a completed job's ResultSet (JSON records by
//	                   default, CSV on request)
//	GET  /meta[?quality=full|quick|tiny|gen]
//	                   enumerate every grid axis — workloads (per
//	                   quality), systems, variants, hardware
//	                   prefetchers, execution modes — so specs can be
//	                   built without reading source
//
// Jobs run FIFO on a single executor (states queued → running →
// done/failed): one sweep already saturates the machine with its
// worker pool, so sequencing jobs bounds resource use at no
// throughput cost. The queue and the retained-job table are capped
// (oldest finished jobs are evicted first).
//
// The grid spec mirrors swpfbench's -sweep flags:
//
//	curl -s localhost:8077/sweep -d '{"workloads":"IS,CG","systems":"Haswell","variants":"plain,auto","quality":"quick"}'
//	curl -s localhost:8077/jobs/job-1
//	curl -s 'localhost:8077/results?id=job-1&format=csv'
//
// Flags: -addr (default 127.0.0.1:8077 — the API is unauthenticated,
// so non-loopback binds are an explicit choice), -jobs (worker pool
// size per sweep), -store/-no-store (result cache; default
// $SWPF_STORE). See docs/service.md for the full protocol.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hwpf"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

func main() {
	switch err := run(os.Args[1:], os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	default:
		fmt.Fprintln(os.Stderr, "swpfd:", err)
		os.Exit(1)
	}
}

// run parses flags and serves until the listener fails — the testable
// part of the daemon is newServer, which httptest drives directly.
func run(argv []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr = fs.String("addr", "127.0.0.1:8077", "listen address (loopback by default; the API is unauthenticated)")
		jobs = fs.Int("jobs", 0, "worker goroutines per sweep (0 = all CPUs)")
	)
	resolveStore := store.BindFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	var cache sweep.Cache
	if st, err := resolveStore(); err != nil {
		return err
	} else if st != nil {
		cache = st
		fmt.Fprintf(stderr, "swpfd: result store at %s\n", st.Dir())
	}
	fmt.Fprintf(stderr, "swpfd: listening on %s\n", *addr)
	return http.ListenAndServe(*addr, newServer(*jobs, cache))
}

// SweepSpec is the POST /sweep request body: the same selectors
// swpfbench's -sweep mode takes on the command line. Empty selector
// strings mean "all"; Quality picks the workload pool — "full"
// (default), "quick", "tiny" (test sizes), or "gen" (randomly
// generated kernels, see internal/gen).
type SweepSpec struct {
	Workloads string `json:"workloads"`
	Systems   string `json:"systems"`
	Variants  string `json:"variants"`
	// HWPF is the hardware-prefetcher axis: comma-separated models
	// among default,none,stride,nextline,ghb,imp ("" = default, each
	// system's own model).
	HWPF string `json:"hwpf"`
	// Exec is the execution-mode axis: comma-separated among
	// direct,replay ("" = direct). Replay records each (workload,
	// variant) once and retimes it per machine x hwpf cell; with a
	// store attached, recorded traces persist and later jobs replay
	// without re-interpreting. Statistics are identical either way.
	Exec    string `json:"exec"`
	C       int64  `json:"c"`
	Depth   int    `json:"depth"`
	Hoist   bool   `json:"hoist"`
	Quality string `json:"quality"`
}

// Workload pools are memoized per quality: constructing one runs the
// input-data generators and reference checksums, which is far too
// heavy to redo inside every POST /sweep handler. Workloads are
// read-only after construction, so sharing them across jobs is safe
// (the sweep engine already shares them across workers).
var (
	fullPool  = sync.OnceValue(func() []*workloads.Workload { return bench.WorkloadSet(bench.Full) })
	quickPool = sync.OnceValue(func() []*workloads.Workload { return bench.WorkloadSet(bench.Quick) })
	tinyPool  = sync.OnceValue(workloads.Tiny)
	// genPool is the generated-kernel family (internal/gen): synthetic
	// scenarios that sweep and cache like the paper's benchmarks, keyed
	// in the store by their canonical parameter vectors.
	genPool = sync.OnceValue(workloads.SyntheticDefault)
)

// grid resolves the spec against the workload registry, failing on any
// unknown name — submission-time validation, so a bad spec is a 400,
// never a failed job.
func (sp SweepSpec) grid() (sweep.Grid, error) {
	var pool []*workloads.Workload
	switch sp.Quality {
	case "", "full":
		pool = fullPool()
	case "quick":
		pool = quickPool()
	case "tiny":
		pool = tinyPool()
	case "gen":
		pool = genPool()
	default:
		return sweep.Grid{}, fmt.Errorf("unknown quality %q (have full, quick, tiny, gen)", sp.Quality)
	}
	ws, err := sweep.SelectWorkloads(pool, sp.Workloads)
	if err != nil {
		return sweep.Grid{}, err
	}
	cfgs, err := sweep.ParseSystems(sp.Systems)
	if err != nil {
		return sweep.Grid{}, err
	}
	vs, err := sweep.ParseVariants(sp.Variants)
	if err != nil {
		return sweep.Grid{}, err
	}
	hws, err := sweep.ParseHWPrefetchers(sp.HWPF)
	if err != nil {
		return sweep.Grid{}, err
	}
	es, err := sweep.ParseExecModes(sp.Exec)
	if err != nil {
		return sweep.Grid{}, err
	}
	return sweep.Grid{
		Workloads:     ws,
		Systems:       cfgs,
		HWPrefetchers: hws,
		Variants:      vs,
		Options:       core.Options{C: sp.C, Depth: sp.Depth, Hoist: sp.Hoist},
		Execs:         es,
	}, nil
}

// Job states.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// Capacity bounds. Jobs run FIFO on a single executor so concurrent
// submissions cannot multiply worker pools; the queue and the retained
// job table are both capped so a chatty client cannot grow the daemon
// without bound.
const (
	// maxQueue bounds submissions waiting to run; beyond it POST
	// /sweep answers 503.
	maxQueue = 1024
	// maxJobs bounds retained jobs: once exceeded, the oldest
	// *terminal* jobs (and their result sets) are evicted, after which
	// their ids answer 404. Queued/running jobs are never evicted.
	maxJobs = 256
)

// job is one submitted sweep. done counts completed cells (cache hits
// included) and is read while workers are still appending, hence
// atomic; set and err are written exactly once, before state flips to
// a terminal value under mu.
type job struct {
	id    string
	spec  SweepSpec
	reqs  []sweep.Request
	cells int
	done  atomic.Int64

	mu    sync.Mutex
	state string
	set   *sweep.ResultSet
	err   error
}

// JobStatus is the wire form of a job, served by GET /jobs{,/{id}}.
type JobStatus struct {
	ID    string    `json:"id"`
	Spec  SweepSpec `json:"spec"`
	State string    `json:"state"`
	Total int       `json:"total"`
	Done  int       `json:"done"`
	Error string    `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:    j.id,
		Spec:  j.spec,
		State: j.state,
		Total: j.cells,
		Done:  int(j.done.Load()),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// server holds the job table and the sweep configuration shared by
// every submission.
type server struct {
	jobs  int
	cache sweep.Cache
	queue chan *job

	mu   sync.Mutex
	seq  int
	byID map[string]*job
	ids  []string // insertion order, for stable GET /jobs listings
}

// newServer builds the daemon's HTTP handler and starts its executor;
// cache may be nil.
func newServer(jobs int, cache sweep.Cache) http.Handler {
	s := &server{
		jobs:  jobs,
		cache: cache,
		queue: make(chan *job, maxQueue),
		byID:  make(map[string]*job),
	}
	go s.executor()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /meta", s.handleMeta)
	return mux
}

// MetaWorkload is one selectable workload in the GET /meta listing.
type MetaWorkload struct {
	Name   string `json:"name"`
	Params string `json:"params"`
}

// MetaSystem is one machine in the GET /meta listing.
type MetaSystem struct {
	Name string `json:"name"`
	HWPF string `json:"hwpf_default"`
}

// MetaModel is one hardware-prefetcher axis value in GET /meta.
type MetaModel struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// Meta is the GET /meta response: every axis a SweepSpec selects over.
type Meta struct {
	Qualities     []string                  `json:"qualities"`
	Workloads     map[string][]MetaWorkload `json:"workloads"`
	Systems       []MetaSystem              `json:"systems"`
	Variants      []string                  `json:"variants"`
	HWPrefetchers []MetaModel               `json:"hwprefetchers"`
	Execs         []string                  `json:"execs"`
}

// handleMeta enumerates the grid axes. ?quality restricts the workload
// listing to one pool (the first request for a quality constructs and
// memoizes that pool, which generates workload input data — a one-off
// cost per quality per process).
func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	pools := map[string]func() []*workloads.Workload{
		"full": fullPool, "quick": quickPool, "tiny": tinyPool, "gen": genPool,
	}
	qualities := []string{"full", "quick", "tiny", "gen"}
	if q := r.URL.Query().Get("quality"); q != "" {
		if _, ok := pools[q]; !ok {
			writeError(w, http.StatusBadRequest, "unknown quality %q (have full, quick, tiny, gen)", q)
			return
		}
		qualities = []string{q}
	}
	m := Meta{
		Qualities: []string{"full", "quick", "tiny", "gen"},
		Workloads: make(map[string][]MetaWorkload),
		Variants:  make([]string, 0, len(sweep.Variants())),
	}
	for _, q := range qualities {
		var ws []MetaWorkload
		for _, wl := range pools[q]() {
			ws = append(ws, MetaWorkload{Name: wl.Name, Params: wl.Params})
		}
		m.Workloads[q] = ws
	}
	for _, cfg := range uarch.All() {
		m.Systems = append(m.Systems, MetaSystem{Name: cfg.Name, HWPF: cfg.HWPrefetcherName()})
	}
	for _, v := range sweep.Variants() {
		m.Variants = append(m.Variants, string(v))
	}
	m.HWPrefetchers = append(m.HWPrefetchers, MetaModel{
		Name:        sweep.HWPrefetcherDefault,
		Description: "keep each system's own model",
	})
	for _, name := range hwpf.Names() {
		m.HWPrefetchers = append(m.HWPrefetchers, MetaModel{Name: name, Description: hwpf.Describe(name)})
	}
	for _, e := range sweep.ExecModes() {
		m.Execs = append(m.Execs, string(e))
	}
	writeJSON(w, http.StatusOK, m)
}

// executor drains the queue one job at a time: a single sweep already
// saturates the machine with its own worker pool, so running jobs
// sequentially bounds resource use without slowing anything down.
func (s *server) executor() {
	for j := range s.queue {
		j.mu.Lock()
		j.state = stateRunning
		j.mu.Unlock()
		runner := sweep.Runner{
			Jobs:       s.jobs,
			Cache:      s.cache,
			OnProgress: func(_, _ int) { j.done.Add(1) },
			OnPutError: store.PutWarner(os.Stderr),
		}
		set, err := runner.Execute(j.reqs)
		j.mu.Lock()
		j.set, j.err = set, err
		if err != nil {
			j.state = stateFailed
		} else {
			j.state = stateDone
		}
		j.reqs = nil // the request list is dead weight once executed
		j.mu.Unlock()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSweep validates the spec, registers a job and enqueues it for
// the executor; the response returns immediately with the job id and
// cell count.
func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	grid, err := spec.grid()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reqs := grid.Expand()

	s.mu.Lock()
	s.seq++
	j := &job{id: "job-" + strconv.Itoa(s.seq), spec: spec, reqs: reqs, cells: len(reqs), state: stateQueued}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "queue full (%d jobs waiting)", maxQueue)
		return
	}
	s.byID[j.id] = j
	s.ids = append(s.ids, j.id)
	s.evictLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, map[string]any{"id": j.id, "cells": len(reqs)})
}

// evictLocked drops the oldest terminal jobs (result sets included)
// while the table exceeds maxJobs; the caller holds s.mu.
func (s *server) evictLocked() {
	for i := 0; len(s.byID) > maxJobs && i < len(s.ids); {
		j := s.byID[s.ids[i]]
		j.mu.Lock()
		terminal := j.state == stateDone || j.state == stateFailed
		j.mu.Unlock()
		if !terminal {
			i++
			continue
		}
		delete(s.byID, s.ids[i])
		s.ids = append(s.ids[:i], s.ids[i+1:]...)
	}
}

func (s *server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*job, 0, len(s.ids))
	for _, id := range s.ids {
		list = append(list, s.byID[id])
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(list))
	for i, j := range list {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleResults streams a completed job's result set through the
// ResultSet emitters: JSON records by default, CSV with format=csv.
func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	j := s.lookup(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	j.mu.Lock()
	state, set, jerr := j.state, j.set, j.err
	j.mu.Unlock()
	switch state {
	case stateQueued, stateRunning:
		writeError(w, http.StatusConflict, "job %s not finished (state %s)", id, state)
		return
	case stateFailed:
		writeError(w, http.StatusInternalServerError, "job %s failed: %v", id, jerr)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		set.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		set.WriteCSV(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (have json, csv)", format)
	}
}
