package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/sweep"
)

// tinySpec is the grid the end-to-end tests submit: tiny workload
// sizes, two workloads, one system, the baseline variant pair.
var tinySpec = `{"workloads":"IS,CG","systems":"A53","variants":"plain,auto","c":16,"quality":"tiny"}`

// submit POSTs a spec and returns the job id and cell count.
func submit(t *testing.T, ts *httptest.Server, spec string) (string, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweep = %d", resp.StatusCode)
	}
	var out struct {
		ID    string `json:"id"`
		Cells int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, out.Cells
}

// poll waits for the job to reach a terminal state and returns its
// final status.
func poll(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == stateDone || st.State == stateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetch GETs a path and returns status code and body.
func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestEndToEnd drives the daemon through the full protocol, cold and
// warm: submit a tiny grid, poll to completion, and require the
// returned result sets — JSON and CSV — to be byte-identical to a
// direct sweep.Runner execution of the same grid. The warm pass must
// be served entirely from the store.
func TestEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(2, st))
	defer ts.Close()

	// Reference: the same spec executed directly by the engine.
	var spec SweepSpec
	if err := json.Unmarshal([]byte(tinySpec), &spec); err != nil {
		t.Fatal(err)
	}
	grid, err := spec.ToGrid()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Runner{Jobs: 2}.Execute(grid.Expand())
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := direct.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	for _, pass := range []string{"cold", "warm"} {
		id, cells := submit(t, ts, tinySpec)
		if cells != len(grid.Expand()) {
			t.Fatalf("%s: submitted %d cells, want %d", pass, cells, len(grid.Expand()))
		}
		final := poll(t, ts, id)
		if final.State != stateDone || final.Done != cells || final.Error != "" {
			t.Fatalf("%s: job finished badly: %+v", pass, final)
		}

		code, body := fetch(t, ts, "/results?id="+id)
		if code != http.StatusOK {
			t.Fatalf("%s: GET /results = %d: %s", pass, code, body)
		}
		if !bytes.Equal(body, wantJSON.Bytes()) {
			t.Errorf("%s: JSON results differ from direct run:\n%s\nvs\n%s", pass, body, wantJSON.Bytes())
		}
		code, body = fetch(t, ts, "/results?id="+id+"&format=csv")
		if code != http.StatusOK {
			t.Fatalf("%s: GET /results csv = %d", pass, code)
		}
		if !bytes.Equal(body, wantCSV.Bytes()) {
			t.Errorf("%s: CSV results differ from direct run:\n%s\nvs\n%s", pass, body, wantCSV.Bytes())
		}
	}

	// The second submission must have been pure cache traffic.
	if stats := st.Stats(); stats.Hits < int64(len(grid.Expand())) {
		t.Errorf("warm pass hit the store only %d times, want >= %d", stats.Hits, len(grid.Expand()))
	}

	// The job listing shows both runs, newest last.
	code, body := fetch(t, ts, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs = %d", code)
	}
	var list []JobStatus
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-2" {
		t.Errorf("job listing wrong: %+v", list)
	}
}

// TestBadRequests covers submission-time validation and the error
// paths of the read endpoints.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(1, nil))
	defer ts.Close()

	for _, body := range []string{
		`{"workloads":"nope","quality":"tiny"}`,
		`{"systems":"M4","quality":"tiny"}`,
		`{"variants":"jit","quality":"tiny"}`,
		`{"quality":"huge"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d, want 400", body, resp.StatusCode)
		}
	}

	if code, _ := fetch(t, ts, "/jobs/job-99"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code, _ := fetch(t, ts, "/results?id=job-99"); code != http.StatusNotFound {
		t.Errorf("unknown job results = %d, want 404", code)
	}

	// A running or queued-format error: results for a finished job in
	// an unknown format.
	id, _ := submit(t, ts, `{"workloads":"IS","systems":"A53","variants":"plain","quality":"tiny"}`)
	poll(t, ts, id)
	if code, _ := fetch(t, ts, "/results?id="+id+"&format=xml"); code != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", code)
	}
}

// TestMeta: GET /meta enumerates every grid axis, and the hwpf spec
// field both validates and changes what a sweep runs.
func TestMeta(t *testing.T) {
	ts := httptest.NewServer(newServer(1, nil))
	defer ts.Close()

	code, body := fetch(t, ts, "/meta?quality=tiny")
	if code != http.StatusOK {
		t.Fatalf("GET /meta = %d: %s", code, body)
	}
	var m Meta
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Qualities) != 4 || len(m.Workloads["tiny"]) == 0 {
		t.Errorf("meta workloads wrong: %+v", m)
	}
	if len(m.Workloads) != 1 {
		t.Errorf("quality filter ignored: listed %d pools", len(m.Workloads))
	}
	if m.Workloads["tiny"][0].Params == "" {
		t.Error("meta omits workload params")
	}
	if len(m.Systems) != 4 || m.Systems[0].HWPF != "stride" {
		t.Errorf("meta systems wrong: %+v", m.Systems)
	}
	if len(m.Variants) != 5 {
		t.Errorf("meta variants wrong: %v", m.Variants)
	}
	// default + none,stride,nextline,ghb,imp.
	if len(m.HWPrefetchers) != 6 || m.HWPrefetchers[0].Name != "default" {
		t.Errorf("meta hwprefetchers wrong: %+v", m.HWPrefetchers)
	}
	for _, hw := range m.HWPrefetchers {
		if hw.Description == "" {
			t.Errorf("model %s lacks a description", hw.Name)
		}
	}
	// default + interval,ooo,inorder.
	if len(m.Cores) != 4 || m.Cores[0].Name != "default" {
		t.Errorf("meta cores wrong: %+v", m.Cores)
	}
	for _, c := range m.Cores {
		if c.Description == "" {
			t.Errorf("core model %s lacks a description", c.Name)
		}
	}
	if m.Systems[0].Core != "interval" {
		t.Errorf("meta system core default wrong: %+v", m.Systems[0])
	}
	if len(m.Execs) != 2 || m.Execs[0] != "direct" || m.Execs[1] != "replay" {
		t.Errorf("meta execs wrong: %v", m.Execs)
	}
	if code, _ := fetch(t, ts, "/meta?quality=huge"); code != http.StatusBadRequest {
		t.Errorf("bad quality = %d, want 400", code)
	}
}

// TestSweepHWPFAxis submits a grid across the hardware axis and checks
// the cell count multiplies and the records carry the model column.
func TestSweepHWPFAxis(t *testing.T) {
	ts := httptest.NewServer(newServer(2, nil))
	defer ts.Close()

	id, cells := submit(t, ts,
		`{"workloads":"IS","systems":"A53","variants":"plain","hwpf":"none,imp","quality":"tiny"}`)
	if cells != 2 {
		t.Fatalf("submitted %d cells, want 2 (one per hardware model)", cells)
	}
	if st := poll(t, ts, id); st.State != stateDone {
		t.Fatalf("job failed: %+v", st)
	}
	code, body := fetch(t, ts, "/results?id="+id+"&format=csv")
	if code != http.StatusOK {
		t.Fatalf("GET /results = %d", code)
	}
	for _, want := range []string{"IS,A53,plain,none,", "IS,A53,plain,imp,"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("results missing %q:\n%s", want, body)
		}
	}

	// Validation: an unknown model is a 400 at submission time.
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"hwpf":"warp-drive","quality":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hwpf spec = %d, want 400", resp.StatusCode)
	}
}

// TestSweepCoreAxis submits a grid across the core-model axis and
// checks the cell count multiplies and the records carry the column.
func TestSweepCoreAxis(t *testing.T) {
	ts := httptest.NewServer(newServer(2, nil))
	defer ts.Close()

	id, cells := submit(t, ts,
		`{"workloads":"IS","systems":"A53","variants":"plain","core":"ooo,inorder","quality":"tiny"}`)
	if cells != 2 {
		t.Fatalf("submitted %d cells, want 2 (one per core model)", cells)
	}
	if st := poll(t, ts, id); st.State != stateDone {
		t.Fatalf("job failed: %+v", st)
	}
	code, body := fetch(t, ts, "/results?id="+id+"&format=csv")
	if code != http.StatusOK {
		t.Fatalf("GET /results = %d", code)
	}
	for _, want := range []string{",ooo,", ",inorder,"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("results missing %q:\n%s", want, body)
		}
	}

	// Validation: an unknown model is a 400 at submission time.
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"core":"abacus","quality":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad core spec = %d, want 400", resp.StatusCode)
	}
}

// TestBadFlagRejected keeps the flag surface honest.
func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestSweepExecAxis: a replay job produces the same statistics as a
// direct job (only the exec column differs), replay traces persist in
// the shared store, and an unknown mode is a 400 at submission time.
func TestSweepExecAxis(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(2, st))
	defer ts.Close()

	const base = `{"workloads":"IS","systems":"A53,Haswell","variants":"plain,auto","c":16,"quality":"tiny"`
	directID, directCells := submit(t, ts, base+`}`)
	if st := poll(t, ts, directID); st.State != stateDone {
		t.Fatalf("direct job failed: %+v", st)
	}
	_, directCSV := fetch(t, ts, "/results?id="+directID+"&format=csv")

	replayID, replayCells := submit(t, ts, base+`,"exec":"replay"}`)
	if directCells != replayCells {
		t.Fatalf("cell counts differ: %d direct vs %d replay", directCells, replayCells)
	}
	if st := poll(t, ts, replayID); st.State != stateDone {
		t.Fatalf("replay job failed: %+v", st)
	}
	_, replayCSV := fetch(t, ts, "/results?id="+replayID+"&format=csv")

	// Replay cells were served from the direct job's result entries
	// (result keys ignore the mode) — the statistics are identical, and
	// the exec column carries the requested mode of each cell.
	warmNorm := strings.ReplaceAll(string(replayCSV), ",replay,", ",direct,")
	if warmNorm != string(directCSV) {
		t.Errorf("replay job served warm differs from direct job:\n%s\nvs\n%s", replayCSV, directCSV)
	}
	if !strings.Contains(string(replayCSV), ",replay,") {
		t.Errorf("warm replay rows not labelled with the requested mode:\n%s", replayCSV)
	}

	// A replay job against a cold result space records traces; re-run
	// with a fresh store to see the replay path itself.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newServer(2, st2))
	defer ts2.Close()
	coldID, _ := submit(t, ts2, base+`,"exec":"replay"}`)
	if st := poll(t, ts2, coldID); st.State != stateDone {
		t.Fatalf("cold replay job failed: %+v", st)
	}
	_, coldCSV := fetch(t, ts2, "/results?id="+coldID+"&format=csv")
	if stats := st2.Stats(); stats.TracePuts == 0 {
		t.Error("cold replay job persisted no traces")
	}
	if !strings.Contains(string(coldCSV), ",replay,") {
		t.Errorf("cold replay rows not labelled replay:\n%s", coldCSV)
	}
	normalized := strings.ReplaceAll(string(coldCSV), ",replay,", ",direct,")
	if normalized != string(directCSV) {
		t.Errorf("replay statistics differ from direct beyond the exec column:\n%s\nvs\n%s", coldCSV, directCSV)
	}

	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"exec":"jit","quality":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad exec spec = %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentSubmissions is the race-focused end-to-end test:
// many goroutines submit the same generated-kernel grid concurrently
// against one shared store. Every job must complete with consistent
// progress counts, every result set must be byte-identical, and the
// store must see each distinct cell written exactly once — concurrent
// submissions never duplicate object writes because the executor
// serializes jobs and later jobs are pure cache traffic.
func TestConcurrentSubmissions(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(2, st))
	defer ts.Close()

	const spec = `{"workloads":"GEN-00,GEN-01","systems":"A53","variants":"plain,auto","c":8,"quality":"gen"}`
	const submitters = 6

	// Submissions run off the test goroutine, so they must not call
	// t.Fatal; failures are collected and asserted after the join.
	ids := make([]string, submitters)
	cells := make([]int, submitters)
	errs := make([]error, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(spec))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("POST /sweep = %d", resp.StatusCode)
				return
			}
			var out struct {
				ID    string `json:"id"`
				Cells int    `json:"cells"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			ids[i], cells[i] = out.ID, out.Cells
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d: %v", i, err)
		}
	}

	seen := map[string]bool{}
	var results [][]byte
	for i := 0; i < submitters; i++ {
		if seen[ids[i]] {
			t.Fatalf("duplicate job id %s", ids[i])
		}
		seen[ids[i]] = true
		final := poll(t, ts, ids[i])
		if final.State != stateDone || final.Done != cells[i] || final.Done != final.Total {
			t.Fatalf("job %s finished inconsistently: %+v", ids[i], final)
		}
		code, body := fetch(t, ts, "/results?id="+ids[i])
		if code != http.StatusOK {
			t.Fatalf("GET /results %s = %d", ids[i], code)
		}
		results = append(results, body)
	}
	for i := 1; i < len(results); i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Errorf("job %s results differ from job %s", ids[i], ids[0])
		}
	}

	// Each distinct cell was written to the store exactly once.
	if stats := st.Stats(); stats.Puts != int64(cells[0]) {
		t.Errorf("store saw %d object writes for %d distinct cells", stats.Puts, cells[0])
	}

	// The listing shows every job, all terminal.
	code, body := fetch(t, ts, "/jobs")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs = %d", code)
	}
	var list []JobStatus
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != submitters {
		t.Errorf("job listing has %d entries, want %d", len(list), submitters)
	}
	for _, js := range list {
		if js.State != stateDone {
			t.Errorf("job %s not done after polling: %+v", js.ID, js)
		}
	}
}

// TestGenQuality: the generated pool is a first-class quality — /meta
// lists it with canonical parameter vectors and a sweep over it runs.
func TestGenQuality(t *testing.T) {
	ts := httptest.NewServer(newServer(1, nil))
	defer ts.Close()

	code, body := fetch(t, ts, "/meta?quality=gen")
	if code != http.StatusOK {
		t.Fatalf("GET /meta?quality=gen = %d: %s", code, body)
	}
	var m Meta
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads["gen"]) == 0 {
		t.Fatal("gen pool empty in /meta")
	}
	for _, w := range m.Workloads["gen"] {
		if !strings.HasPrefix(w.Name, "GEN-") || !strings.Contains(w.Params, "shape=") {
			t.Errorf("gen workload %q has non-canonical params %q", w.Name, w.Params)
		}
	}

	id, cells := submit(t, ts, `{"workloads":"GEN-02","systems":"A53","variants":"plain,auto","c":8,"quality":"gen"}`)
	if cells != 2 {
		t.Fatalf("gen sweep submitted %d cells, want 2", cells)
	}
	if final := poll(t, ts, id); final.State != stateDone {
		t.Fatalf("gen sweep failed: %+v", final)
	}
}
