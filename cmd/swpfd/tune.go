package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/sweep"
	"repro/internal/tune"
)

// TuneSpec is the POST /tune request body: the shared tune spec of
// internal/tune — the same struct swpfbench's -tune flags and swpfctl
// tune build, validated by the same Space resolver. The embedded grid
// spec selects what to tune; strategy/cs/depths/hoists bound the
// search.
type TuneSpec = tune.Spec

// TuneReply is the POST /tune response.
type TuneReply struct {
	ID string `json:"id"`
}

// tuneJob is the dynamic state of one tune job: the searched progress
// counts (evaluations, not grid cells — hillclimb's total grows as it
// walks), the terminal state, and the report. It plays the ticket's
// role for tune jobs: same states, same SSE event shape, same
// monotonic counters.
type tuneJob struct {
	mu     sync.Mutex
	done   int
	total  int
	state  string
	errMsg string
	report *tune.Report
	subs   map[chan struct{}]bool
}

func newTuneJob() *tuneJob {
	return &tuneJob{state: stateRunning, subs: make(map[chan struct{}]bool)}
}

// notifyLocked pings every subscriber without blocking; a full ping
// channel means a notification is already pending, which coalesces.
func (tj *tuneJob) notifyLocked() {
	for ch := range tj.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// setProgress advances the counters monotonically (the tuner reports
// batch totals before results, and the queue forwards intra-batch
// completion, so updates interleave).
func (tj *tuneJob) setProgress(done, total int) {
	tj.mu.Lock()
	defer tj.mu.Unlock()
	if done > tj.done {
		tj.done = done
	}
	if total > tj.total {
		tj.total = total
	}
	tj.notifyLocked()
}

func (tj *tuneJob) setDone(done int) {
	tj.mu.Lock()
	defer tj.mu.Unlock()
	if done > tj.done {
		tj.done = done
		tj.notifyLocked()
	}
}

func (tj *tuneJob) doneNow() int {
	tj.mu.Lock()
	defer tj.mu.Unlock()
	return tj.done
}

func (tj *tuneJob) finish(rep *tune.Report, err error) {
	tj.mu.Lock()
	defer tj.mu.Unlock()
	if err != nil {
		tj.state = stateFailed
		tj.errMsg = err.Error()
	} else {
		tj.state = stateDone
		tj.report = rep
	}
	tj.notifyLocked()
}

// snapshot returns the job's SSE event and whether it is terminal.
func (tj *tuneJob) snapshot() (Event, bool) {
	tj.mu.Lock()
	defer tj.mu.Unlock()
	return Event{Done: tj.done, Total: tj.total, State: tj.state}, tj.state != stateRunning
}

func (tj *tuneJob) result() (rep *tune.Report, errMsg string, terminal bool) {
	tj.mu.Lock()
	defer tj.mu.Unlock()
	return tj.report, tj.errMsg, tj.state != stateRunning
}

// subscribe registers a ping channel, pre-loaded so late subscribers
// immediately see the current (possibly terminal) state — the ticket
// subscription's contract.
func (tj *tuneJob) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	ch <- struct{}{}
	tj.mu.Lock()
	tj.subs[ch] = true
	tj.mu.Unlock()
	return ch, func() {
		tj.mu.Lock()
		delete(tj.subs, ch)
		tj.mu.Unlock()
	}
}

// handleTune validates a tune spec and starts the search
// asynchronously; the search's evaluation batches go through the
// shared cell queue, so concurrent tunes (and sweeps) dedupe cell by
// cell fleet-wide. The job is visible in /jobs, streams progress on
// /jobs/{id}/events, and serves its report on /results.
func (s *server) handleTune(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	var tsp TuneSpec
	if err := json.Unmarshal(body, &tsp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding spec: %v", err)
		return
	}
	if tsp.Gen != 0 || tsp.GenSeed != 0 {
		writeError(w, http.StatusBadRequest, "%s", errGenWire)
		return
	}
	if err := tsp.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tj := newTuneJob()
	s.mu.Lock()
	s.seq++
	j := &job{id: "job-" + strconv.Itoa(s.seq), spec: tsp.Spec, tuneSpec: &tsp, tune: tj}
	s.byID[j.id] = j
	s.ids = append(s.ids, j.id)
	s.evictLocked()
	s.mu.Unlock()
	go s.runTune(tj, tsp)
	writeJSON(w, http.StatusAccepted, TuneReply{ID: j.id})
}

func (s *server) runTune(tj *tuneJob, tsp TuneSpec) {
	tuner := tune.Tuner{
		Runner:     tuneRunner{s: s, quality: tsp.QualityName(), priority: tsp.Priority, tj: tj},
		OnProgress: tj.setProgress,
		Metrics:    s.tuneM,
	}
	rep, err := tuner.Run(tsp)
	tj.finish(rep, err)
}

// tuneRunner is the daemon's tune.Runner: every evaluation batch is
// submitted to the fleet queue like a sweep, so cells dedupe against
// running jobs, persist in the store, and execute on local and remote
// workers alike. Intra-batch completion is forwarded to the job's
// progress counters.
type tuneRunner struct {
	s        *server
	quality  string
	priority int
	tj       *tuneJob
}

func (tr tuneRunner) Execute(reqs []sweep.Request) (*sweep.ResultSet, error) {
	wire := make([]fleet.CellSpec, len(reqs))
	var err error
	for i, req := range reqs {
		if wire[i], err = fleet.SpecFor(tr.quality, req); err != nil {
			return nil, err
		}
	}
	var ticket *fleet.Ticket
	for attempt := 0; ; attempt++ {
		ticket, err = tr.s.queue.Submit(reqs, wire, tr.priority)
		var full fleet.ErrQueueFull
		if errors.As(err, &full) && attempt < 20 {
			// Back off and retry: tune batches arrive over the job's
			// lifetime, so transient fullness (other jobs draining) is
			// expected. A batch that can never fit fails after the
			// retries with the queue's own error.
			d := full.RetryAfter
			if d <= 0 {
				d = 50 * time.Millisecond
			}
			if d > time.Second {
				d = time.Second
			}
			time.Sleep(d)
			continue
		}
		if err != nil {
			return nil, err
		}
		break
	}
	base := tr.tj.doneNow()
	ch, cancel := ticket.Subscribe()
	defer cancel()
	for p := range ch {
		tr.tj.setDone(base + p.Done)
		if p.Finished {
			break
		}
	}
	set, ok := ticket.ResultSet()
	if !ok {
		return nil, fmt.Errorf("cell queue ticket ended without results")
	}
	return set, set.Err()
}

// handleTuneEvents streams a tune job's progress as SSE — the same
// event shape and termination contract as sweep jobs.
func (s *server) handleTuneEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := j.tune.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ch:
			ev, terminal := j.tune.snapshot()
			if _, err := io.WriteString(w, "data: "); err != nil {
				return
			}
			if err := enc.Encode(ev); err != nil { // Encode appends the \n
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			fl.Flush()
			if terminal {
				return
			}
		}
	}
}

// handleTuneResults serves a finished tune job's report — byte-
// identical to swpfbench -tune with the same spec (both go through
// tune.Report's emitters).
func (s *server) handleTuneResults(w http.ResponseWriter, r *http.Request, j *job) {
	rep, errMsg, terminal := j.tune.result()
	if !terminal {
		ev, _ := j.tune.snapshot()
		writeError(w, http.StatusConflict, "job %s not finished (%d/%d cells)", j.id, ev.Done, ev.Total)
		return
	}
	if errMsg != "" {
		writeError(w, http.StatusInternalServerError, "job %s failed: %v", j.id, errMsg)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		rep.WriteJSON(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		rep.WriteCSV(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (have json, csv)", format)
	}
}
