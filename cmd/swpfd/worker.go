// Fleet worker mode: `swpfd -worker http://coordinator:8077` turns the
// process into a cell executor. The loop is lease → reconstruct →
// execute → complete, with heartbeats keeping the lease alive while a
// batch runs; the coordinator owns all bookkeeping (dedupe,
// persistence, result fan-out), so a worker holds no state worth
// preserving — kill it any time and its leased cells return to the
// queue when the lease expires.
//
// Workers reconstruct cells from wire specs (internal/fleet.CellSpec):
// the machine configuration travels in full, the workload is resolved
// by (quality, name) out of the worker's own memoized pools and
// cross-checked against the coordinator's parameter string, so a
// version-skewed worker fails the cell loudly instead of silently
// computing the wrong one.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// workerPoll is how often an idle worker asks for work; workerBackoffMax
// caps the reconnect backoff after coordinator errors.
const (
	workerPoll       = 200 * time.Millisecond
	workerBackoffMax = 5 * time.Second
)

// resolveWorkload is the fleet.WorkloadResolver backed by the daemon's
// memoized pools — the same pools submission validation uses, so
// coordinator and worker agree on every name.
func resolveWorkload(quality, name string) (*sweep.Request, error) {
	pool, err := poolFor(quality)
	if err != nil {
		return nil, err
	}
	for _, wl := range pool {
		if wl.Name == name {
			return &sweep.Request{Workload: wl}, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q in the %s pool", name, quality)
}

// runWorker is the worker-mode main loop: poll the coordinator for
// leases until killed. Coordinator outages are retried with capped
// exponential backoff — a worker outlives coordinator restarts.
func runWorker(coordinator, name string, jobs, batch int, log *slog.Logger) error {
	coordinator = strings.TrimRight(coordinator, "/")
	if !strings.Contains(coordinator, "://") {
		return fmt.Errorf("-worker %q is not an absolute coordinator URL", coordinator)
	}
	if name == "" {
		name = fmt.Sprintf("swpfd-%d", os.Getpid())
	}
	w := &fleetWorker{
		coordinator: coordinator,
		name:        name,
		jobs:        jobs,
		batch:       batch,
		client:      &http.Client{Timeout: 30 * time.Second},
		log:         log.With("worker", name),
	}
	w.log.Info("pulling", "coordinator", coordinator)
	backoff := 100 * time.Millisecond
	for {
		l, rid, err := w.lease()
		if err != nil {
			w.log.Warn("lease failed", "err", err, "backoff", backoff.String())
			time.Sleep(backoff)
			if backoff *= 2; backoff > workerBackoffMax {
				backoff = workerBackoffMax
			}
			continue
		}
		backoff = 100 * time.Millisecond
		if l == nil {
			time.Sleep(workerPoll)
			continue
		}
		if err := w.execute(l, rid); err != nil {
			w.log.Warn("execute failed", "rid", rid, "err", err)
		}
	}
}

type fleetWorker struct {
	coordinator string
	name        string
	jobs        int
	batch       int
	client      *http.Client
	log         *slog.Logger
}

// post sends one JSON request and decodes the JSON reply into out
// (skipped when out is nil or the reply is 204). A non-empty rid
// travels as the request-ID header, so the coordinator's access log
// correlates the call with the lease that started the work; the
// returned rid is whatever ID the coordinator stamped on the response.
func (w *fleetWorker) post(path, rid string, in, out any) (int, string, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequest(http.MethodPost, w.coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	respRID := resp.Header.Get(obs.RequestIDHeader)
	if resp.StatusCode == http.StatusNoContent || out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, respRID, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, respRID, fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp.StatusCode, respRID, json.NewDecoder(resp.Body).Decode(out)
}

// lease asks for a batch; a nil lease means nothing pending. The
// returned rid is the coordinator's ID for the lease request — the
// worker logs the batch's execution under it and sends it back on
// complete, tying both sides of the cell lifecycle together.
func (w *fleetWorker) lease() (*fleet.Lease, string, error) {
	var l fleet.Lease
	code, rid, err := w.post("/fleet/lease", "", LeaseRequest{Worker: w.name, Max: w.batch}, &l)
	if err != nil {
		return nil, rid, err
	}
	if code == http.StatusNoContent {
		return nil, rid, nil
	}
	return &l, rid, nil
}

// execute reconstructs a lease's cells, runs them, and reports every
// cell — results for the runnable ones, errors for the rest — while a
// background heartbeat keeps the lease alive. The whole batch logs
// under rid, the coordinator's ID for the lease request.
func (w *fleetWorker) execute(l *fleet.Lease, rid string) error {
	log := w.log.With("rid", rid, "lease", l.ID)
	log.Info("lease", "cells", len(l.Cells), "ttl", l.TTL().String())
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(heartbeatEvery(l.TTL()))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var hb struct {
					OK bool `json:"ok"`
				}
				if _, _, err := w.post("/fleet/heartbeat", rid, HeartbeatRequest{Lease: l.ID, Worker: w.name}, &hb); err == nil && !hb.OK {
					// Lease gone (expired and re-leased elsewhere): keep
					// computing — the completion is reported anyway and
					// the coordinator drops whatever the re-lease already
					// answered.
					return
				}
			}
		}
	}()

	results := make([]fleet.CellResult, len(l.Cells))
	var reqs []sweep.Request
	var reqIdx []int
	for i, c := range l.Cells {
		results[i] = fleet.CellResult{Key: c.Key}
		req, err := c.Spec.Request(resolveWorkload)
		if err != nil {
			results[i].Err = err.Error()
			continue
		}
		reqs = append(reqs, req)
		reqIdx = append(reqIdx, i)
	}
	start := time.Now()
	if len(reqs) > 0 {
		// No cache: the coordinator probed its store at submission and
		// persists completions; replay groups lease whole, so trace
		// amortization happens in-memory within this Execute call.
		set, _ := sweep.Runner{Jobs: w.jobs}.Execute(reqs)
		for n, o := range set.Outcomes {
			i := reqIdx[n]
			if o.Err != nil {
				results[i].Err = o.Err.Error()
			} else {
				d := fleet.ResultDataOf(o.Result)
				results[i].Result = &d
			}
		}
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	for _, res := range results {
		log.Debug("cell", "key", res.Key, "err", res.Err)
	}
	log.Info("execute", "cells", len(l.Cells), "dur", elapsed.String())

	var rep struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if _, _, err := w.post("/fleet/complete", rid, CompleteRequest{Lease: l.ID, Worker: w.name, Results: results}, &rep); err != nil {
		return fmt.Errorf("reporting lease %s: %w", l.ID, err)
	}
	log.Info("complete", "accepted", rep.Accepted, "dropped", rep.Dropped, "dur", elapsed.String())
	if rep.Dropped > 0 {
		log.Warn("duplicate cells dropped by coordinator", "dropped", rep.Dropped)
	}
	return nil
}
