// Fleet worker mode: `swpfd -worker http://coordinator:8077` turns the
// process into a cell executor. The loop is lease → reconstruct →
// execute → complete, with heartbeats keeping the lease alive while a
// batch runs; the coordinator owns all bookkeeping (dedupe,
// persistence, result fan-out), so a worker holds no state worth
// preserving — kill it any time and its leased cells return to the
// queue when the lease expires.
//
// Workers reconstruct cells from wire specs (internal/fleet.CellSpec):
// the machine configuration travels in full, the workload is resolved
// by (quality, name) out of the worker's own memoized pools and
// cross-checked against the coordinator's parameter string, so a
// version-skewed worker fails the cell loudly instead of silently
// computing the wrong one.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/sweep"
)

// workerPoll is how often an idle worker asks for work; workerBackoffMax
// caps the reconnect backoff after coordinator errors.
const (
	workerPoll       = 200 * time.Millisecond
	workerBackoffMax = 5 * time.Second
)

// resolveWorkload is the fleet.WorkloadResolver backed by the daemon's
// memoized pools — the same pools submission validation uses, so
// coordinator and worker agree on every name.
func resolveWorkload(quality, name string) (*sweep.Request, error) {
	pool, err := poolFor(quality)
	if err != nil {
		return nil, err
	}
	for _, wl := range pool {
		if wl.Name == name {
			return &sweep.Request{Workload: wl}, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q in the %s pool", name, quality)
}

// runWorker is the worker-mode main loop: poll the coordinator for
// leases until killed. Coordinator outages are retried with capped
// exponential backoff — a worker outlives coordinator restarts.
func runWorker(coordinator, name string, jobs, batch int, stderr io.Writer) error {
	coordinator = strings.TrimRight(coordinator, "/")
	if !strings.Contains(coordinator, "://") {
		return fmt.Errorf("-worker %q is not an absolute coordinator URL", coordinator)
	}
	if name == "" {
		name = fmt.Sprintf("swpfd-%d", os.Getpid())
	}
	w := &fleetWorker{
		coordinator: coordinator,
		name:        name,
		jobs:        jobs,
		batch:       batch,
		client:      &http.Client{Timeout: 30 * time.Second},
		stderr:      stderr,
	}
	fmt.Fprintf(stderr, "swpfd: worker %s pulling from %s\n", name, coordinator)
	backoff := 100 * time.Millisecond
	for {
		l, err := w.lease()
		if err != nil {
			fmt.Fprintf(stderr, "swpfd: worker: %v (retrying in %s)\n", err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > workerBackoffMax {
				backoff = workerBackoffMax
			}
			continue
		}
		backoff = 100 * time.Millisecond
		if l == nil {
			time.Sleep(workerPoll)
			continue
		}
		if err := w.execute(l); err != nil {
			fmt.Fprintf(stderr, "swpfd: worker: %v\n", err)
		}
	}
}

type fleetWorker struct {
	coordinator string
	name        string
	jobs        int
	batch       int
	client      *http.Client
	stderr      io.Writer
}

// post sends one JSON request and decodes the JSON reply into out
// (skipped when out is nil or the reply is 204).
func (w *fleetWorker) post(path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	resp, err := w.client.Post(w.coordinator+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent || out == nil {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// lease asks for a batch; nil means nothing pending.
func (w *fleetWorker) lease() (*fleet.Lease, error) {
	var l fleet.Lease
	code, err := w.post("/fleet/lease", LeaseRequest{Worker: w.name, Max: w.batch}, &l)
	if err != nil {
		return nil, err
	}
	if code == http.StatusNoContent {
		return nil, nil
	}
	return &l, nil
}

// execute reconstructs a lease's cells, runs them, and reports every
// cell — results for the runnable ones, errors for the rest — while a
// background heartbeat keeps the lease alive.
func (w *fleetWorker) execute(l *fleet.Lease) error {
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(heartbeatEvery(l.TTL()))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				var hb struct {
					OK bool `json:"ok"`
				}
				if _, err := w.post("/fleet/heartbeat", HeartbeatRequest{Lease: l.ID, Worker: w.name}, &hb); err == nil && !hb.OK {
					// Lease gone (expired and re-leased elsewhere): keep
					// computing — the completion is reported anyway and
					// the coordinator drops whatever the re-lease already
					// answered.
					return
				}
			}
		}
	}()

	results := make([]fleet.CellResult, len(l.Cells))
	var reqs []sweep.Request
	var reqIdx []int
	for i, c := range l.Cells {
		results[i] = fleet.CellResult{Key: c.Key}
		req, err := c.Spec.Request(resolveWorkload)
		if err != nil {
			results[i].Err = err.Error()
			continue
		}
		reqs = append(reqs, req)
		reqIdx = append(reqIdx, i)
	}
	if len(reqs) > 0 {
		// No cache: the coordinator probed its store at submission and
		// persists completions; replay groups lease whole, so trace
		// amortization happens in-memory within this Execute call.
		set, _ := sweep.Runner{Jobs: w.jobs}.Execute(reqs)
		for n, o := range set.Outcomes {
			i := reqIdx[n]
			if o.Err != nil {
				results[i].Err = o.Err.Error()
			} else {
				d := fleet.ResultDataOf(o.Result)
				results[i].Result = &d
			}
		}
	}

	var rep struct {
		Accepted int `json:"accepted"`
		Dropped  int `json:"dropped"`
	}
	if _, err := w.post("/fleet/complete", CompleteRequest{Lease: l.ID, Worker: w.name, Results: results}, &rep); err != nil {
		return fmt.Errorf("reporting lease %s: %w", l.ID, err)
	}
	if rep.Dropped > 0 {
		fmt.Fprintf(w.stderr, "swpfd: worker %s: %d duplicate cells dropped by coordinator\n", w.name, rep.Dropped)
	}
	return nil
}
