package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/sweep"
)

// coordinatorOnly builds a server with no in-process workers: cells
// stay pending until a (test-driven) fleet worker pulls them.
func coordinatorOnly(t *testing.T, cfg config) *httptest.Server {
	t.Helper()
	cfg.localWorkers = -1
	if cfg.stderr == nil {
		cfg.stderr = &bytes.Buffer{}
	}
	ts := httptest.NewServer(newServerCfg(cfg))
	t.Cleanup(ts.Close)
	return ts
}

// errorBody decodes the daemon's JSON error envelope.
func errorBody(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("non-JSON error body %q: %v", body, err)
	}
	return e.Error
}

// post POSTs a JSON body and returns status code and body.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestBatchSubmit: POST /sweep with a JSON array admits every spec as
// its own job and mirrors the list shape in the reply; each job's
// results match a direct run of its grid.
func TestBatchSubmit(t *testing.T) {
	ts := httptest.NewServer(newServer(2, nil))
	defer ts.Close()

	code, body := post(t, ts, "/sweep", `[
		{"workloads":"IS","systems":"A53","variants":"plain,auto","quality":"tiny"},
		{"workloads":"CG","systems":"A53","variants":"plain","quality":"tiny","priority":5}
	]`)
	if code != http.StatusAccepted {
		t.Fatalf("batch POST /sweep = %d: %s", code, body)
	}
	var replies []SubmitReply
	if err := json.Unmarshal(body, &replies); err != nil {
		t.Fatalf("batch reply not a list: %s", body)
	}
	if len(replies) != 2 || replies[0].Cells != 2 || replies[1].Cells != 1 {
		t.Fatalf("batch replies wrong: %+v", replies)
	}

	for i, spec := range []string{
		`{"workloads":"IS","systems":"A53","variants":"plain,auto","quality":"tiny"}`,
		`{"workloads":"CG","systems":"A53","variants":"plain","quality":"tiny"}`,
	} {
		final := poll(t, ts, replies[i].ID)
		if final.State != stateDone {
			t.Fatalf("batch job %s failed: %+v", replies[i].ID, final)
		}
		var sp SweepSpec
		if err := json.Unmarshal([]byte(spec), &sp); err != nil {
			t.Fatal(err)
		}
		grid, err := sp.ToGrid()
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sweep.Runner{Jobs: 2}.Execute(grid.Expand())
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := direct.WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		if code, got := fetch(t, ts, "/results?id="+replies[i].ID); code != http.StatusOK || !bytes.Equal(got, want.Bytes()) {
			t.Errorf("batch job %s results differ from direct run (code %d)", replies[i].ID, code)
		}
	}

	// An empty list is a 400, not zero silently-accepted jobs.
	if code, body := post(t, ts, "/sweep", `[]`); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d: %s", code, body)
	}
}

// TestQueueFull429 pins the backpressure contract: a submission whose
// new cells would exceed -max-pending is rejected whole with 429 and a
// Retry-After header, nothing is enqueued, and a duplicate of an
// already-live cell is NOT new work and still admits.
func TestQueueFull429(t *testing.T) {
	ts := coordinatorOnly(t, config{maxPending: 1})

	one := `{"workloads":"IS","systems":"A53","variants":"plain","quality":"tiny"}`
	if code, body := post(t, ts, "/sweep", one); code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", code, body)
	}

	// A distinct cell exceeds the 1-cell bound.
	resp, err := http.Post(ts.URL+"/sweep", "application/json",
		strings.NewReader(`{"workloads":"CG","systems":"A53","variants":"plain","quality":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429: %s", resp.StatusCode, buf.Bytes())
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", ra)
	}
	if msg := errorBody(t, buf.Bytes()); !strings.HasPrefix(msg, "queue full: ") {
		t.Errorf("429 body = %q, want queue full error", msg)
	}

	// The same grid again dedupes onto the live cell: no new cells, so
	// it admits despite the full queue.
	if code, body := post(t, ts, "/sweep", one); code != http.StatusAccepted {
		t.Errorf("duplicate submit = %d, want 202 (dedupe adds no cells): %s", code, body)
	}

	// Batch overflow: the reply reports what was admitted before the
	// full spec.
	code, body := post(t, ts, "/sweep", `[
		{"workloads":"IS","systems":"A53","variants":"plain","quality":"tiny"},
		{"workloads":"RA","systems":"A53","variants":"plain","quality":"tiny"}
	]`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch overflow = %d: %s", code, body)
	}
	var partial struct {
		Error     string        `json:"error"`
		Submitted []SubmitReply `json:"submitted"`
	}
	if err := json.Unmarshal(body, &partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Submitted) != 1 || !strings.HasPrefix(partial.Error, "queue full: ") {
		t.Errorf("batch overflow body wrong: %+v", partial)
	}
}

// TestErrorContracts pins exact status codes and error bodies for the
// daemon's failure paths, in the ParseVariants error-contract style.
func TestErrorContracts(t *testing.T) {
	ts := httptest.NewServer(newServer(1, nil))
	defer ts.Close()

	cases := []struct {
		method, path, body string
		wantCode           int
		wantErr            string // exact, or prefix when ending in "*"
	}{
		{"POST", "/sweep", `not json`, 400, "decoding spec: *"},
		{"POST", "/sweep", `{"quality":"huge"}`, 400, `unknown quality "huge" (have full, quick, tiny, gen)`},
		{"POST", "/sweep", `{"variants":"jit","quality":"tiny"}`, 400, `sweep: unknown variant "jit" (have [plain auto manual icc indirect-only])`},
		{"POST", "/sweep", `{"hwpf":"warp-drive","quality":"tiny"}`, 400, `sweep: unknown hardware prefetcher "warp-drive" (have default, none, stride, nextline, ghb, imp)`},
		{"POST", "/sweep", `{"exec":"jit","quality":"tiny"}`, 400, `sweep: core: unknown exec mode "jit" (have direct, replay)`},
		{"GET", "/jobs/job-99", "", 404, `unknown job "job-99"`},
		{"GET", "/jobs/job-99/events", "", 404, `unknown job "job-99"`},
		{"GET", "/results?id=job-99", "", 404, `unknown job "job-99"`},
		{"POST", "/fleet/lease", `{}`, 400, "lease request missing worker name"},
		{"POST", "/fleet/lease", `nope`, 400, "decoding lease request: *"},
		{"POST", "/fleet/complete", `nope`, 400, "decoding completion: *"},
		{"POST", "/fleet/heartbeat", `nope`, 400, "decoding heartbeat: *"},
	}
	for _, tc := range cases {
		var code int
		var body []byte
		switch tc.method {
		case "POST":
			code, body = post(t, ts, tc.path, tc.body)
		default:
			code, body = fetch(t, ts, tc.path)
		}
		if code != tc.wantCode {
			t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.path, code, tc.wantCode, body)
			continue
		}
		got := errorBody(t, body)
		if want, isPrefix := strings.CutSuffix(tc.wantErr, "*"); isPrefix {
			if !strings.HasPrefix(got, want) {
				t.Errorf("%s %s error = %q, want prefix %q", tc.method, tc.path, got, want)
			}
		} else if got != tc.wantErr {
			t.Errorf("%s %s error = %q, want %q", tc.method, tc.path, got, tc.wantErr)
		}
	}

	// format= on a finished job: exact 400 body.
	id, _ := submit(t, ts, `{"workloads":"IS","systems":"A53","variants":"plain","quality":"tiny"}`)
	poll(t, ts, id)
	code, body := fetch(t, ts, "/results?id="+id+"&format=xml")
	if code != http.StatusBadRequest {
		t.Fatalf("bad format = %d", code)
	}
	if got, want := errorBody(t, body), `unknown format "xml" (have json, csv)`; got != want {
		t.Errorf("bad format error = %q, want %q", got, want)
	}
}

// TestResultsConflictWhileRunning: /results on an unfinished job is a
// 409 that reports progress. Driven on a coordinator-only server so
// the job deterministically never finishes.
func TestResultsConflictWhileRunning(t *testing.T) {
	ts := coordinatorOnly(t, config{})
	id, _ := submit(t, ts, `{"workloads":"IS","systems":"A53","variants":"plain","quality":"tiny"}`)
	code, body := fetch(t, ts, "/results?id="+id)
	if code != http.StatusConflict {
		t.Fatalf("running results = %d, want 409: %s", code, body)
	}
	if got, want := errorBody(t, body), fmt.Sprintf("job %s not finished (0/1 cells)", id); got != want {
		t.Errorf("409 body = %q, want %q", got, want)
	}
}

// TestEventsStream: GET /jobs/{id}/events is an SSE stream whose
// terminal event carries the final state and counts, after which the
// stream closes. A subscriber joining a finished job sees exactly the
// terminal event.
func TestEventsStream(t *testing.T) {
	ts := httptest.NewServer(newServer(2, nil))
	defer ts.Close()

	id, cells := submit(t, ts, tinySpec)
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.State != stateDone || last.Done != cells || last.Total != cells {
		t.Fatalf("terminal event wrong: %+v", last)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Done < events[i-1].Done {
			t.Errorf("event counts not monotonic: %+v", events)
		}
	}

	// Late subscriber: one terminal event, stream closes.
	resp2, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late, err := bufio.NewReader(resp2.Body).ReadString('\n')
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(late), "data: ")), &ev); err != nil {
		t.Fatalf("late event %q: %v", late, err)
	}
	if ev.State != stateDone || ev.Done != cells {
		t.Errorf("late subscriber event wrong: %+v", ev)
	}
}

// TestFleetWorkerLoop drives the real worker-mode code (fleetWorker)
// against a coordinator-only daemon over HTTP: lease, reconstruct from
// wire specs, execute, complete — and the job's results must be
// byte-identical to a direct run. This is the in-process twin of the
// internal/e2e real-binary test.
func TestFleetWorkerLoop(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := coordinatorOnly(t, config{cache: st, objects: st, leaseBatch: 3})

	id, cells := submit(t, ts, tinySpec)

	// One manual worker pass: drain the queue through the HTTP fleet
	// API using the same code `swpfd -worker` runs.
	w := &fleetWorker{
		coordinator: ts.URL,
		name:        "test-worker",
		jobs:        2,
		batch:       3,
		client:      &http.Client{},
		log:         obs.Discard(),
	}
	for drained := false; !drained; {
		l, rid, err := w.lease()
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			drained = true
			continue
		}
		if rid == "" {
			t.Fatal("lease response carried no request ID")
		}
		if err := w.execute(l, rid); err != nil {
			t.Fatal(err)
		}
	}

	final := poll(t, ts, id)
	if final.State != stateDone || final.Done != cells {
		t.Fatalf("job after worker drain: %+v", final)
	}

	var spec SweepSpec
	if err := json.Unmarshal([]byte(tinySpec), &spec); err != nil {
		t.Fatal(err)
	}
	grid, err := spec.ToGrid()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Runner{Jobs: 2}.Execute(grid.Expand())
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := direct.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := direct.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	if _, got := fetch(t, ts, "/results?id="+id); !bytes.Equal(got, wantJSON.Bytes()) {
		t.Errorf("fleet-worker JSON differs from direct run:\n%s\nvs\n%s", got, wantJSON.Bytes())
	}
	if _, got := fetch(t, ts, "/results?id="+id+"&format=csv"); !bytes.Equal(got, wantCSV.Bytes()) {
		t.Errorf("fleet-worker CSV differs from direct run:\n%s\nvs\n%s", got, wantCSV.Bytes())
	}

	// The coordinator persisted exactly one object per distinct cell,
	// and /fleet accounts for the worker.
	if stats := st.Stats(); stats.Puts != int64(cells) {
		t.Errorf("store saw %d puts for %d cells", stats.Puts, cells)
	}
	code, body := fetch(t, ts, "/fleet")
	if code != http.StatusOK {
		t.Fatalf("GET /fleet = %d", code)
	}
	var fs FleetStatus
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Queue.Completed != int64(cells) || fs.Queue.Pending != 0 || fs.Queue.Leases != 0 {
		t.Errorf("fleet stats wrong: %+v", fs.Queue)
	}
	found := false
	for _, wi := range fs.Queue.Workers {
		if wi.Name == "test-worker" {
			found = true
		}
	}
	if !found {
		t.Errorf("worker missing from /fleet workers: %+v", fs.Queue.Workers)
	}
	if fs.Store == nil || fs.Store.Puts != int64(cells) {
		t.Errorf("/fleet store stats wrong: %+v", fs.Store)
	}
}

// TestLeaseExpiryOverHTTP: a worker that leases cells and vanishes
// (never completes, never heartbeats) loses the lease after the TTL;
// the cells requeue and a second worker finishes the job — the
// HTTP-level twin of the e2e worker-kill test.
func TestLeaseExpiryOverHTTP(t *testing.T) {
	ts := coordinatorOnly(t, config{leaseTTL: 50 * time.Millisecond})

	id, cells := submit(t, ts, `{"workloads":"IS","systems":"A53","variants":"plain,auto","quality":"tiny"}`)

	// The doomed worker takes everything and dies.
	code, body := post(t, ts, "/fleet/lease", `{"worker":"doomed","max":99}`)
	if code != http.StatusOK {
		t.Fatalf("lease = %d: %s", code, body)
	}
	var l fleet.Lease
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if len(l.Cells) != cells {
		t.Fatalf("doomed worker leased %d cells, want %d", len(l.Cells), cells)
	}

	// Until the TTL elapses there is nothing to lease; afterwards the
	// cells are back.
	if code, _ := post(t, ts, "/fleet/lease", `{"worker":"w2"}`); code != http.StatusNoContent {
		t.Fatalf("second lease while held = %d, want 204", code)
	}
	time.Sleep(60 * time.Millisecond)

	w := &fleetWorker{coordinator: ts.URL, name: "w2", jobs: 1, batch: 99, client: &http.Client{}, log: obs.Discard()}
	l2, rid, err := w.lease()
	if err != nil {
		t.Fatal(err)
	}
	if l2 == nil || len(l2.Cells) != cells {
		t.Fatalf("requeued lease wrong: %+v", l2)
	}
	if err := w.execute(l2, rid); err != nil {
		t.Fatal(err)
	}
	if final := poll(t, ts, id); final.State != stateDone || final.Done != cells {
		t.Fatalf("job after requeue: %+v", final)
	}

	var fs FleetStatus
	_, body = fetch(t, ts, "/fleet")
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	// At least the doomed worker's cells were requeued (the second
	// worker's lease may also expire under a slow scheduler — its late
	// completion is still accepted, so the job finishes either way).
	if fs.Queue.Requeued < int64(cells) {
		t.Errorf("requeued = %d, want >= %d", fs.Queue.Requeued, cells)
	}
}
