package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/store"
	"repro/internal/sweep"
	"repro/internal/tune"
)

// tinyTuneSpec is the search the tune end-to-end tests submit: one
// workload, one system, the default ladder on the tiny pool.
var tinyTuneSpec = `{"workloads":"IS","systems":"A53","quality":"tiny"}`

// submitTune POSTs a tune spec and returns the job id.
func submitTune(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/tune", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /tune = %d", resp.StatusCode)
	}
	var out TuneReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// TestTuneEndToEnd drives a tune job through the full protocol, cold
// and warm: submit, poll to completion, and require the report — JSON
// and CSV — to be byte-identical to a direct tune.Tuner run of the
// same spec (what `swpfbench -tune` emits). The warm pass reopens the
// same store in a fresh daemon and must complete without a single new
// simulation.
func TestTuneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(2, st))
	defer ts.Close()

	// Reference: the same spec run directly through the tuner.
	var tsp TuneSpec
	if err := json.Unmarshal([]byte(tinyTuneSpec), &tsp); err != nil {
		t.Fatal(err)
	}
	rep, err := tune.Tuner{Runner: sweep.Runner{Jobs: 2}}.Run(tsp)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := rep.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}

	id := submitTune(t, ts, tinyTuneSpec)
	final := poll(t, ts, id)
	if final.State != stateDone {
		t.Fatalf("job %s state = %q (%s)", id, final.State, final.Error)
	}
	if final.Tune == nil {
		t.Fatalf("job %s status has no tune spec: %+v", id, final)
	}
	if got := final.Tune.Workloads; got != "IS" {
		t.Fatalf("status tune.workloads = %q, want IS", got)
	}
	if final.Done == 0 || final.Done != final.Total {
		t.Fatalf("job %s progress = %d/%d, want full", id, final.Done, final.Total)
	}

	code, body := fetch(t, ts, "/results?id="+id)
	if code != http.StatusOK {
		t.Fatalf("GET /results = %d: %s", code, body)
	}
	if !bytes.Equal(body, wantJSON.Bytes()) {
		t.Errorf("daemon JSON report differs from direct tuner:\n%s\nwant:\n%s", body, wantJSON.Bytes())
	}
	code, body = fetch(t, ts, "/results?id="+id+"&format=csv")
	if code != http.StatusOK {
		t.Fatalf("GET /results format=csv = %d: %s", code, body)
	}
	if !bytes.Equal(body, wantCSV.Bytes()) {
		t.Errorf("daemon CSV report differs from direct tuner:\n%s\nwant:\n%s", body, wantCSV.Bytes())
	}

	// Warm pass: a fresh daemon over the same store must reproduce the
	// report byte for byte without simulating anything.
	ts.Close()
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(newServer(2, st2))
	defer ts2.Close()

	before := interp.Runs()
	id2 := submitTune(t, ts2, tinyTuneSpec)
	if final := poll(t, ts2, id2); final.State != stateDone {
		t.Fatalf("warm job %s state = %q (%s)", id2, final.State, final.Error)
	}
	if runs := interp.Runs() - before; runs != 0 {
		t.Errorf("warm tune ran %d fresh simulations, want 0", runs)
	}
	code, body = fetch(t, ts2, "/results?id="+id2)
	if code != http.StatusOK {
		t.Fatalf("warm GET /results = %d: %s", code, body)
	}
	if !bytes.Equal(body, wantJSON.Bytes()) {
		t.Errorf("warm report differs from cold:\n%s", body)
	}
}

// TestTuneEvents follows a tune job's SSE stream to its terminal
// event — the same event shape and termination contract as sweeps.
func TestTuneEvents(t *testing.T) {
	ts := httptest.NewServer(newServer(2, nil))
	defer ts.Close()

	id := submitTune(t, ts, tinyTuneSpec)
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var last Event
	seen := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		seen = true
		if last.State != stateRunning {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("no events received")
	}
	if last.State != stateDone {
		t.Fatalf("terminal event state = %q, want %q", last.State, stateDone)
	}
	if last.Done == 0 || last.Done != last.Total {
		t.Fatalf("terminal event progress = %d/%d, want full", last.Done, last.Total)
	}
}

// TestTuneBadRequests pins the /tune error contract: malformed JSON,
// local-only gen fields, fixed tuned axes, and unknown selectors are
// all 400s with the tuner's own messages.
func TestTuneBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(1, nil))
	defer ts.Close()

	cases := []struct {
		name, spec, want string
	}{
		{"malformed", `{`, "decoding spec:"},
		{"gen", `{"gen":3,"quality":"tiny"}`, errGenWire},
		{"fixed c", `{"c":64,"quality":"tiny"}`, `tune: "c", "depth" and "hoist" are searched, not fixed`},
		{"exec", `{"exec":"replay","quality":"tiny"}`, `tune: "exec" is not a tuned axis`},
		{"two variants", `{"variants":"auto,manual","quality":"tiny"}`, "tune: exactly one variant is tuned at a time"},
		{"plain", `{"variants":"plain","quality":"tiny"}`, `tune: variant "plain" is the baseline`},
		{"strategy", `{"strategy":"anneal","quality":"tiny"}`, `tune: unknown strategy "anneal" (have exhaustive, hillclimb)`},
		{"ladder", `{"cs":"64,x","quality":"tiny"}`, `tune: bad look-ahead "x"`},
	}
	for _, tc := range cases {
		code, body := post(t, ts, "/tune", tc.spec)
		if code != http.StatusBadRequest {
			t.Errorf("%s: POST /tune = %d, want 400", tc.name, code)
			continue
		}
		if msg := errorBody(t, body); !strings.Contains(msg, tc.want) {
			t.Errorf("%s: error = %q, want substring %q", tc.name, msg, tc.want)
		}
	}
}

// TestMetaTune checks GET /meta advertises the tuner's searchable axis
// bounds: strategies, tunable variants, and the default ladders.
func TestMetaTune(t *testing.T) {
	ts := httptest.NewServer(newServer(1, nil))
	defer ts.Close()

	code, body := fetch(t, ts, "/meta?quality=tiny")
	if code != http.StatusOK {
		t.Fatalf("GET /meta = %d", code)
	}
	var m Meta
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if want := []string{"exhaustive", "hillclimb"}; !equalStrings(m.Tune.Strategies, want) {
		t.Errorf("tune.strategies = %v, want %v", m.Tune.Strategies, want)
	}
	if len(m.Tune.Cs) != len(tune.DefaultCs) || m.Tune.Cs[0] != 1 || m.Tune.Cs[len(m.Tune.Cs)-1] != 1024 {
		t.Errorf("tune.cs = %v, want default ladder %v", m.Tune.Cs, tune.DefaultCs)
	}
	if len(m.Tune.Depths) == 0 || len(m.Tune.Hoists) == 0 {
		t.Errorf("tune depth/hoist bounds missing: %+v", m.Tune)
	}
	if len(m.Tune.Variants) == 0 {
		t.Fatal("tune.variants empty")
	}
	for _, v := range m.Tune.Variants {
		if v == "plain" {
			t.Error("tune.variants includes the plain baseline")
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
