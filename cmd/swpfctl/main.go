// Command swpfctl is the sweep fabric's client: a cmd-per-verb CLI
// that talks to a swpfd coordinator (cmd/swpfd) over its HTTP API.
//
//	swpfctl submit  -workloads IS,CG -systems A53 -variants plain,auto [-wait]
//	swpfctl submit  -f specs.json            # one spec or a JSON array
//	swpfctl tune    -workloads IS -systems A53 [-strategy hillclimb] [-wait]
//	swpfctl status  [job-id] [-follow]
//	swpfctl results -id job-1 [-format csv] [-o out.csv]
//	swpfctl top     [-follow [-interval 2s]]
//	swpfctl doctor
//
// The coordinator address is resolved in documented precedence order —
// highest wins:
//
//  1. the verb's -addr flag
//  2. $SWPFCTL_ADDR
//  3. the "addr" field of the config file ($SWPFCTL_CONFIG if set,
//     else $XDG_CONFIG_HOME/swpfctl/config.json, else
//     ~/.config/swpfctl/config.json)
//  4. the default, http://127.0.0.1:8077
//
// `swpfctl doctor` prints which layer won, then probes the daemon.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sweep"
	"repro/internal/tune"
)

func main() {
	switch err := run(os.Args[1:], os.Stdout, os.Stderr); {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	default:
		fmt.Fprintln(os.Stderr, "swpfctl:", err)
		os.Exit(1)
	}
}

const defaultAddr = "http://127.0.0.1:8077"

// Environment variables the client consults.
const (
	addrEnvVar   = "SWPFCTL_ADDR"
	configEnvVar = "SWPFCTL_CONFIG"
)

// fileConfig is the config-file schema.
type fileConfig struct {
	Addr string `json:"addr"`
}

// configPath resolves the config-file location: $SWPFCTL_CONFIG wins,
// then $XDG_CONFIG_HOME/swpfctl/config.json, then
// ~/.config/swpfctl/config.json; "" when no home is resolvable.
func configPath() string {
	if p := os.Getenv(configEnvVar); p != "" {
		return p
	}
	dir := os.Getenv("XDG_CONFIG_HOME")
	if dir == "" {
		home, err := os.UserHomeDir()
		if err != nil {
			return ""
		}
		dir = filepath.Join(home, ".config")
	}
	return filepath.Join(dir, "swpfctl", "config.json")
}

// resolveAddr applies the precedence chain (flag > env > config file >
// default) and reports which layer won — doctor prints the source, and
// the precedence test pins it.
func resolveAddr(flagAddr string) (addr, source string) {
	if flagAddr != "" {
		return strings.TrimRight(flagAddr, "/"), "flag"
	}
	if env := os.Getenv(addrEnvVar); env != "" {
		return strings.TrimRight(env, "/"), "env $" + addrEnvVar
	}
	if path := configPath(); path != "" {
		if data, err := os.ReadFile(path); err == nil {
			var fc fileConfig
			if json.Unmarshal(data, &fc) == nil && fc.Addr != "" {
				return strings.TrimRight(fc.Addr, "/"), "config " + path
			}
		}
	}
	return defaultAddr, "default"
}

func usage(stderr io.Writer) {
	fmt.Fprint(stderr, `usage: swpfctl <command> [flags]

commands:
  submit   submit a sweep spec (axis flags, -f file, or -spec JSON)
  tune     search (c, depth, hoist, hwpf) for the best speedup
  status   list jobs, or show one job (optionally -follow its progress)
  results  fetch a completed job's result set
  top      fleet dashboard rendered from the coordinator's /metrics
  doctor   check configuration and coordinator health

Run 'swpfctl <command> -h' for per-command flags. The coordinator
address comes from -addr, $SWPFCTL_ADDR, the config file, or the
default `+defaultAddr+` — in that order.
`)
}

func run(argv []string, stdout, stderr io.Writer) error {
	if len(argv) == 0 {
		usage(stderr)
		return fmt.Errorf("missing command (have submit, tune, status, results, top, doctor)")
	}
	cmd, rest := argv[0], argv[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(rest, stdout, stderr)
	case "tune":
		return cmdTune(rest, stdout, stderr)
	case "status":
		return cmdStatus(rest, stdout, stderr)
	case "results":
		return cmdResults(rest, stdout, stderr)
	case "top":
		return cmdTop(rest, stdout, stderr)
	case "doctor":
		return cmdDoctor(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stderr)
		return flag.ErrHelp
	default:
		usage(stderr)
		return fmt.Errorf("unknown command %q (have submit, tune, status, results, top, doctor)", cmd)
	}
}

// apiError decodes the daemon's {"error": ...} envelope into a Go
// error carrying the HTTP status.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
}

// getJSON fetches one JSON document.
func getJSON(addr, path string, out any) error {
	resp, err := http.Get(addr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// jobStatus mirrors swpfd's JobStatus — the fields the client reads.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
	Done  int    `json:"done"`
	Error string `json:"error,omitempty"`
}

// submitReply mirrors swpfd's POST /sweep reply.
type submitReply struct {
	ID    string `json:"id"`
	Cells int    `json:"cells"`
}

// cmdSubmit builds a spec from flags (or takes one verbatim via -f /
// -spec, either a single object or a JSON array) and POSTs it. With
// -wait it then follows each job's event stream to completion and
// fails if any job fails.
func cmdSubmit(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag = fs.String("addr", "", "coordinator URL (default $SWPFCTL_ADDR, config file, or "+defaultAddr+")")
		file     = fs.String("f", "", "read the spec (object or array) from this file, '-' for stdin")
		raw      = fs.String("spec", "", "spec JSON passed through verbatim")

		workloads = fs.String("workloads", "", "comma-separated workload names (empty = all)")
		systems   = fs.String("systems", "", "comma-separated machine names (empty = all)")
		variants  = fs.String("variants", "", "comma-separated variants (empty = all)")
		hwpfAxis  = fs.String("hwpf", "", "comma-separated hardware-prefetcher models (empty = default)")
		coreAxis  = fs.String("core", "", "comma-separated core models among default,interval,ooo,inorder (empty = default)")
		exec      = fs.String("exec", "", "comma-separated execution modes among direct,replay (empty = direct)")
		c         = fs.Int64("c", 0, "prefetch look-ahead constant (0 = per-variant default)")
		depth     = fs.Int("depth", 0, "indirect prefetch depth (0 = default)")
		hoist     = fs.Bool("hoist", false, "hoist loop-invariant prefetch address parts")
		quality   = fs.String("quality", "", "workload pool: full, quick, tiny, gen (empty = full)")
		priority  = fs.Int("priority", 0, "queue priority (higher leases first)")
		wait      = fs.Bool("wait", false, "follow the submitted jobs' progress and exit when all complete")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("submit takes no positional arguments (got %q)", fs.Arg(0))
	}
	if *file != "" && *raw != "" {
		return fmt.Errorf("-f and -spec are mutually exclusive")
	}

	var body []byte
	switch {
	case *file == "-":
		var err error
		if body, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("reading stdin: %w", err)
		}
	case *file != "":
		var err error
		if body, err = os.ReadFile(*file); err != nil {
			return err
		}
	case *raw != "":
		body = []byte(*raw)
	default:
		// The flags fill the shared grid spec of internal/sweep — the
		// same struct the daemon decodes and validates, so the client
		// cannot drift from the server's spec schema.
		spec := sweep.Spec{
			Workloads: *workloads,
			Systems:   *systems,
			Variants:  *variants,
			HWPF:      *hwpfAxis,
			Core:      *coreAxis,
			Exec:      *exec,
			C:         *c,
			Depth:     *depth,
			Hoist:     *hoist,
			Quality:   *quality,
			Priority:  *priority,
		}
		var err error
		if body, err = json.Marshal(spec); err != nil {
			return err
		}
	}

	addr, _ := resolveAddr(*addrFlag)
	resp, err := http.Post(addr+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			err := apiError(resp)
			return fmt.Errorf("%w (retry after %ss)", err, ra)
		}
	}
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	reply, _ := io.ReadAll(resp.Body)
	var jobs []submitReply
	var one submitReply
	if err := json.Unmarshal(reply, &jobs); err != nil {
		if err := json.Unmarshal(reply, &one); err != nil {
			return fmt.Errorf("unexpected submit reply: %s", reply)
		}
		jobs = []submitReply{one}
	}
	for _, j := range jobs {
		fmt.Fprintf(stdout, "%s\t%d cells\n", j.ID, j.Cells)
	}
	if !*wait {
		return nil
	}
	for _, j := range jobs {
		final, err := follow(addr, j.ID, stderr)
		if err != nil {
			return err
		}
		if final.State != "done" {
			return fmt.Errorf("job %s %s: %s", j.ID, final.State, final.Error)
		}
	}
	return nil
}

// tuneReply mirrors swpfd's POST /tune reply.
type tuneReply struct {
	ID string `json:"id"`
}

// cmdTune builds a tune spec from flags (or takes one verbatim via -f /
// -spec) and POSTs it to /tune. With -wait it follows the search's
// progress and then fetches the report — the same bytes
// `swpfbench -tune` emits for the same spec.
func cmdTune(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfctl tune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag = fs.String("addr", "", "coordinator URL (default $SWPFCTL_ADDR, config file, or "+defaultAddr+")")
		file     = fs.String("f", "", "read the tune spec from this file, '-' for stdin")
		raw      = fs.String("spec", "", "tune spec JSON passed through verbatim")

		workloads = fs.String("workloads", "", "comma-separated workload names (empty = all)")
		systems   = fs.String("systems", "", "comma-separated machine names (empty = all)")
		variant   = fs.String("variant", "", "the single variant to tune (empty = auto)")
		hwpfAxis  = fs.String("hwpf", "", "comma-separated hardware-prefetcher models to search (empty = default)")
		coreAxis  = fs.String("core", "", "comma-separated core models to search (empty = default)")
		strategy  = fs.String("strategy", "", "search strategy: exhaustive or hillclimb (empty = exhaustive)")
		cs        = fs.String("cs", "", "comma-separated look-ahead ladder (empty = default ladder)")
		depths    = fs.String("depths", "", "comma-separated indirect depths to search (empty = 0)")
		hoists    = fs.String("hoists", "", "comma-separated hoist settings among false,true (empty = false)")
		quality   = fs.String("quality", "", "workload pool: full, quick, tiny (empty = full)")
		priority  = fs.Int("priority", 0, "queue priority (higher leases first)")
		wait      = fs.Bool("wait", false, "follow the search's progress, then fetch the report")
		format    = fs.String("format", "json", "report format with -wait: json or csv")
		out       = fs.String("o", "", "write the report to this file instead of stdout (with -wait)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("tune takes no positional arguments (got %q)", fs.Arg(0))
	}
	if *file != "" && *raw != "" {
		return fmt.Errorf("-f and -spec are mutually exclusive")
	}
	switch *format {
	case "json", "csv":
	default:
		return fmt.Errorf("unknown format %q (have json, csv)", *format)
	}

	var body []byte
	switch {
	case *file == "-":
		var err error
		if body, err = io.ReadAll(os.Stdin); err != nil {
			return fmt.Errorf("reading stdin: %w", err)
		}
	case *file != "":
		var err error
		if body, err = os.ReadFile(*file); err != nil {
			return err
		}
	case *raw != "":
		body = []byte(*raw)
	default:
		// The flags fill the shared tune spec of internal/tune — the
		// struct the daemon and swpfbench -tune decode and validate.
		spec := tune.Spec{
			Strategy: *strategy,
			Cs:       *cs,
			Depths:   *depths,
			Hoists:   *hoists,
		}
		spec.Workloads = *workloads
		spec.Systems = *systems
		spec.Variants = *variant
		spec.HWPF = *hwpfAxis
		spec.Core = *coreAxis
		spec.Quality = *quality
		spec.Priority = *priority
		var err error
		if body, err = json.Marshal(spec); err != nil {
			return err
		}
	}

	addr, _ := resolveAddr(*addrFlag)
	resp, err := http.Post(addr+"/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp)
	}
	var reply tuneReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return fmt.Errorf("unexpected tune reply: %w", err)
	}
	fmt.Fprintf(stdout, "%s\n", reply.ID)
	if !*wait {
		return nil
	}
	final, err := follow(addr, reply.ID, stderr)
	if err != nil {
		return err
	}
	if final.State != "done" {
		return fmt.Errorf("job %s %s: %s", reply.ID, final.State, final.Error)
	}
	return fetchResults(addr, reply.ID, *format, *out, stdout)
}

// event mirrors swpfd's SSE payload.
type event struct {
	Done  int    `json:"done"`
	Total int    `json:"total"`
	State string `json:"state"`
}

// follow streams a job's SSE events, echoing progress to w, and
// returns the job's terminal status.
func follow(addr, id string, w io.Writer) (jobStatus, error) {
	resp, err := http.Get(addr + "/jobs/" + id + "/events")
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobStatus{}, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	var last event
	seen := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &last); err != nil {
			return jobStatus{}, fmt.Errorf("bad event %q: %w", line, err)
		}
		seen = true
		fmt.Fprintf(w, "%s\t%d/%d\t%s\n", id, last.Done, last.Total, last.State)
		if last.State != "running" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return jobStatus{}, err
	}
	if !seen || last.State == "running" {
		return jobStatus{}, fmt.Errorf("event stream for %s ended before the job finished", id)
	}
	var final jobStatus
	if err := getJSON(addr, "/jobs/"+id, &final); err != nil {
		return jobStatus{}, err
	}
	return final, nil
}

// cmdStatus lists all jobs, or one job by id; -follow streams one
// job's progress to completion.
func cmdStatus(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfctl status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag = fs.String("addr", "", "coordinator URL (default $SWPFCTL_ADDR, config file, or "+defaultAddr+")")
		followIt = fs.Bool("follow", false, "stream the job's progress until it completes (requires a job id)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	addr, _ := resolveAddr(*addrFlag)
	switch fs.NArg() {
	case 0:
		if *followIt {
			return fmt.Errorf("-follow requires a job id")
		}
		var jobs []jobStatus
		if err := getJSON(addr, "/jobs", &jobs); err != nil {
			return err
		}
		for _, j := range jobs {
			printStatus(stdout, j)
		}
		return nil
	case 1:
		id := fs.Arg(0)
		if *followIt {
			final, err := follow(addr, id, stdout)
			if err != nil {
				return err
			}
			printStatus(stdout, final)
			return nil
		}
		var j jobStatus
		if err := getJSON(addr, "/jobs/"+id, &j); err != nil {
			return err
		}
		printStatus(stdout, j)
		return nil
	default:
		return fmt.Errorf("status takes at most one job id")
	}
}

func printStatus(w io.Writer, j jobStatus) {
	line := fmt.Sprintf("%s\t%s\t%d/%d", j.ID, j.State, j.Done, j.Total)
	if j.Error != "" {
		line += "\t" + j.Error
	}
	fmt.Fprintln(w, line)
}

// cmdResults fetches a completed job's result set.
func cmdResults(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfctl results", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag = fs.String("addr", "", "coordinator URL (default $SWPFCTL_ADDR, config file, or "+defaultAddr+")")
		id       = fs.String("id", "", "job id (required)")
		format   = fs.String("format", "json", "output format: json or csv")
		out      = fs.String("o", "", "write to this file instead of stdout")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("results requires -id")
	}
	switch *format {
	case "json", "csv":
	default:
		return fmt.Errorf("unknown format %q (have json, csv)", *format)
	}
	addr, _ := resolveAddr(*addrFlag)
	return fetchResults(addr, *id, *format, *out, stdout)
}

// fetchResults GETs a job's results and writes them to the -o file, or
// stdout when none is given.
func fetchResults(addr, id, format, out string, stdout io.Writer) error {
	resp, err := http.Get(addr + "/results?id=" + id + "&format=" + format)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	dst := io.Writer(stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	if _, err := io.Copy(dst, resp.Body); err != nil {
		return err
	}
	return nil
}

// cmdDoctor reports the resolved configuration (and which precedence
// layer produced it), then probes the coordinator: /meta for liveness,
// /fleet for queue, worker and store health.
func cmdDoctor(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfctl doctor", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addrFlag := fs.String("addr", "", "coordinator URL (default $SWPFCTL_ADDR, config file, or "+defaultAddr+")")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	addr, source := resolveAddr(*addrFlag)
	fmt.Fprintf(stdout, "coordinator:\t%s (from %s)\n", addr, source)
	if p := configPath(); p != "" {
		if _, err := os.Stat(p); err == nil {
			fmt.Fprintf(stdout, "config file:\t%s\n", p)
		} else {
			fmt.Fprintf(stdout, "config file:\t%s (absent)\n", p)
		}
	}

	var meta struct {
		Qualities []string `json:"qualities"`
		Systems   []any    `json:"systems"`
	}
	if err := getJSON(addr, "/meta?quality=tiny", &meta); err != nil {
		fmt.Fprintf(stdout, "daemon:\tunreachable\n")
		return fmt.Errorf("coordinator %s: %w", addr, err)
	}
	fmt.Fprintf(stdout, "daemon:\tok (%d qualities, %d systems)\n", len(meta.Qualities), len(meta.Systems))

	var fleet struct {
		Queue struct {
			Pending    int   `json:"pending"`
			Leased     int   `json:"leased"`
			Completed  int64 `json:"completed"`
			Requeued   int64 `json:"requeued"`
			MaxPending int   `json:"max_pending"`
			Workers    []struct {
				Name string `json:"name"`
			} `json:"workers"`
		} `json:"queue"`
		Store *struct {
			Hits, Misses, Puts int64
		} `json:"store"`
		Peer *struct {
			Base        string `json:"base"`
			Up          bool   `json:"up"`
			Transitions int64  `json:"transitions"`
			Dropped     int64  `json:"dropped"`
		} `json:"peer"`
	}
	if err := getJSON(addr, "/fleet", &fleet); err != nil {
		return fmt.Errorf("coordinator %s: %w", addr, err)
	}
	fmt.Fprintf(stdout, "queue:\t%d pending, %d leased, %d completed (cap %d)\n",
		fleet.Queue.Pending, fleet.Queue.Leased, fleet.Queue.Completed, fleet.Queue.MaxPending)
	names := make([]string, 0, len(fleet.Queue.Workers))
	for _, w := range fleet.Queue.Workers {
		names = append(names, w.Name)
	}
	fmt.Fprintf(stdout, "workers:\t%d (%s)\n", len(names), strings.Join(names, ", "))
	switch {
	case fleet.Store == nil:
		fmt.Fprintf(stdout, "store:\tnone attached\n")
	default:
		fmt.Fprintf(stdout, "store:\t%d hits, %d misses, %d puts\n", fleet.Store.Hits, fleet.Store.Misses, fleet.Store.Puts)
	}
	if fleet.Peer != nil {
		state := "down"
		if fleet.Peer.Up {
			state = "up"
		}
		fmt.Fprintf(stdout, "peer:\t%s (%s)\n", fleet.Peer.Base, state)
	}

	// Anomaly checks: each prints one "warning:" line; none is fatal —
	// doctor diagnoses, the operator decides.
	if fleet.Peer != nil && !fleet.Peer.Up {
		fmt.Fprintf(stdout, "warning:\tstore peer %s is down (circuit open, %d trips, %d replications dropped)\n",
			fleet.Peer.Base, fleet.Peer.Transitions, fleet.Peer.Dropped)
	}
	if fleet.Queue.Requeued > 0 {
		fmt.Fprintf(stdout, "warning:\t%d cells requeued by lease expiry — workers dying or lease TTL too short\n",
			fleet.Queue.Requeued)
	}
	if cap := fleet.Queue.MaxPending; cap > 0 {
		if live := fleet.Queue.Pending + fleet.Queue.Leased; live*10 >= cap*9 {
			fmt.Fprintf(stdout, "warning:\tqueue near capacity (%d/%d live cells) — submissions will soon see 429\n",
				live, cap)
		}
	}
	return nil
}
