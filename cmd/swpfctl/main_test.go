package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fakeCoordinator is a stub swpfd implementing the endpoints the
// client drives; it records what it served.
type fakeCoordinator struct {
	mu        sync.Mutex
	submitted []string // request bodies, in order
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweep", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.submitted = append(f.submitted, string(body))
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		if bytes.HasPrefix(bytes.TrimSpace(body), []byte("[")) {
			fmt.Fprint(w, `[{"id":"job-1","cells":2},{"id":"job-2","cells":1}]`)
			return
		}
		fmt.Fprint(w, `{"id":"job-1","cells":4}`)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"id":"job-1","state":"done","total":4,"done":4}]`)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if id != "job-1" && id != "job-2" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, `{"error":"unknown job %q"}`, id)
			return
		}
		fmt.Fprintf(w, `{"id":%q,"state":"done","total":4,"done":4}`, id)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "data: {\"done\":2,\"total\":4,\"state\":\"running\"}\n\n")
		fmt.Fprint(w, "data: {\"done\":4,\"total\":4,\"state\":\"done\"}\n\n")
	})
	mux.HandleFunc("GET /results", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("id") != "job-1" {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"unknown job"}`)
			return
		}
		if r.URL.Query().Get("format") == "csv" {
			fmt.Fprint(w, "workload,system\nIS,A53\n")
			return
		}
		fmt.Fprint(w, `[{"workload":"IS"}]`)
	})
	mux.HandleFunc("GET /meta", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"qualities":["full","quick","tiny","gen"],"systems":[{},{},{},{}]}`)
	})
	mux.HandleFunc("GET /fleet", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"queue":{"pending":0,"leased":0,"completed":4,"max_pending":65536,
			"workers":[{"name":"local-0"}]},"store":{"Hits":4,"Misses":4,"Puts":4}}`)
	})
	return mux
}

// start runs the fake and isolates the test from ambient config
// (env vars, a real ~/.config) so precedence is exactly what the test
// sets up.
func start(t *testing.T) (*fakeCoordinator, *httptest.Server) {
	t.Helper()
	f := &fakeCoordinator{}
	ts := httptest.NewServer(f.handler())
	t.Cleanup(ts.Close)
	t.Setenv(addrEnvVar, "")
	t.Setenv(configEnvVar, filepath.Join(t.TempDir(), "absent.json"))
	return f, ts
}

func TestAddrPrecedence(t *testing.T) {
	_, ts := start(t)

	// Layer 4: default.
	t.Setenv(configEnvVar, filepath.Join(t.TempDir(), "nope.json"))
	if addr, source := resolveAddr(""); addr != defaultAddr || source != "default" {
		t.Errorf("default layer: %s from %s", addr, source)
	}

	// Layer 3: config file.
	cfg := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(cfg, []byte(`{"addr":"http://cfg:1/"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Setenv(configEnvVar, cfg)
	if addr, source := resolveAddr(""); addr != "http://cfg:1" || !strings.HasPrefix(source, "config ") {
		t.Errorf("config layer: %s from %s", addr, source)
	}

	// Layer 2: env beats config.
	t.Setenv(addrEnvVar, "http://env:2")
	if addr, source := resolveAddr(""); addr != "http://env:2" || source != "env $"+addrEnvVar {
		t.Errorf("env layer: %s from %s", addr, source)
	}

	// Layer 1: flag beats env and config.
	if addr, source := resolveAddr(ts.URL); addr != ts.URL || source != "flag" {
		t.Errorf("flag layer: %s from %s", addr, source)
	}

	// XDG fallback path shape (no $SWPFCTL_CONFIG).
	t.Setenv(configEnvVar, "")
	t.Setenv("XDG_CONFIG_HOME", "/xdg")
	if got, want := configPath(), filepath.Join("/xdg", "swpfctl", "config.json"); got != want {
		t.Errorf("configPath = %q, want %q", got, want)
	}
}

func TestSubmitAxisFlags(t *testing.T) {
	f, ts := start(t)
	var out, errb bytes.Buffer
	err := run([]string{"submit", "-addr", ts.URL,
		"-workloads", "IS,CG", "-systems", "A53", "-variants", "plain,auto",
		"-c", "16", "-quality", "tiny", "-priority", "3"}, &out, &errb)
	if err != nil {
		t.Fatalf("submit: %v (%s)", err, errb.String())
	}
	if got := out.String(); got != "job-1\t4 cells\n" {
		t.Errorf("submit output = %q", got)
	}
	if len(f.submitted) != 1 {
		t.Fatalf("submitted %d specs", len(f.submitted))
	}
	var spec map[string]any
	if err := json.Unmarshal([]byte(f.submitted[0]), &spec); err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"workloads": "IS,CG", "systems": "A53", "variants": "plain,auto",
		"c": float64(16), "quality": "tiny", "priority": float64(3),
	}
	for k, v := range want {
		if spec[k] != v {
			t.Errorf("spec[%s] = %v, want %v", k, spec[k], v)
		}
	}
	if _, ok := spec["hwpf"]; ok {
		t.Error("unset axis flag leaked into the spec")
	}
}

func TestSubmitFileAndWait(t *testing.T) {
	f, ts := start(t)
	specFile := filepath.Join(t.TempDir(), "specs.json")
	batch := `[{"workloads":"IS","quality":"tiny"},{"workloads":"CG","quality":"tiny"}]`
	if err := os.WriteFile(specFile, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if err := run([]string{"submit", "-addr", ts.URL, "-f", specFile, "-wait"}, &out, &errb); err != nil {
		t.Fatalf("submit -f -wait: %v (%s)", err, errb.String())
	}
	if f.submitted[0] != batch {
		t.Errorf("file body not passed through: %q", f.submitted[0])
	}
	if got := out.String(); !strings.Contains(got, "job-1\t2 cells\n") || !strings.Contains(got, "job-2\t1 cells\n") {
		t.Errorf("batch output = %q", got)
	}
	// -wait followed the event stream.
	if !strings.Contains(errb.String(), "4/4\tdone") {
		t.Errorf("wait progress missing: %q", errb.String())
	}
}

func TestStatusAndFollow(t *testing.T) {
	_, ts := start(t)
	var out bytes.Buffer
	if err := run([]string{"status", "-addr", ts.URL}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "job-1\tdone\t4/4\n" {
		t.Errorf("status list = %q", got)
	}

	out.Reset()
	if err := run([]string{"status", "-addr", ts.URL, "-follow", "job-1"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "job-1\t2/4\trunning\n") || !strings.HasSuffix(got, "job-1\tdone\t4/4\n") {
		t.Errorf("follow output = %q", got)
	}

	// Unknown job surfaces the daemon's error body.
	err := run([]string{"status", "-addr", ts.URL, "job-9"}, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), `unknown job "job-9"`) {
		t.Errorf("unknown job error = %v", err)
	}
}

func TestResults(t *testing.T) {
	_, ts := start(t)
	var out bytes.Buffer
	if err := run([]string{"results", "-addr", ts.URL, "-id", "job-1"}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if out.String() != `[{"workload":"IS"}]` {
		t.Errorf("results json = %q", out.String())
	}

	// -format csv -o file.
	dst := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"results", "-addr", ts.URL, "-id", "job-1", "-format", "csv", "-o", dst}, &bytes.Buffer{}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "workload,system\nIS,A53\n" {
		t.Errorf("results csv file = %q", data)
	}

	// Client-side validation.
	if err := run([]string{"results", "-addr", ts.URL}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing -id accepted")
	}
	if err := run([]string{"results", "-addr", ts.URL, "-id", "job-1", "-format", "xml"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("bad -format accepted")
	}
}

func TestDoctor(t *testing.T) {
	_, ts := start(t)
	var out bytes.Buffer
	if err := run([]string{"doctor", "-addr", ts.URL}, &out, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"coordinator:\t" + ts.URL + " (from flag)",
		"daemon:\tok (4 qualities, 4 systems)",
		"queue:\t0 pending, 0 leased, 4 completed (cap 65536)",
		"workers:\t1 (local-0)",
		"store:\t4 hits, 4 misses, 4 puts",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("doctor output missing %q:\n%s", want, got)
		}
	}

	// A dead coordinator is an error, after reporting the config.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	if err := run([]string{"doctor", "-addr", dead.URL}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("doctor against dead coordinator succeeded")
	}
}

func TestBadCommands(t *testing.T) {
	for _, argv := range [][]string{
		{},
		{"teleport"},
		{"submit", "-f", "x", "-spec", "{}"},
		{"submit", "positional"},
		{"status", "-follow"},
		{"status", "a", "b"},
	} {
		if err := run(argv, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%q) accepted", argv)
		}
	}
}
