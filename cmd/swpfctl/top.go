// The top verb: a one-shot (or -follow) fleet dashboard rendered from
// the coordinator's GET /metrics Prometheus exposition — the same
// counters /fleet serves, read through the metrics pipeline so the verb
// doubles as an end-to-end check of the observability layer.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics fetches and parses one /metrics exposition.
func scrapeMetrics(addr string) ([]obs.Sample, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return obs.ParseText(resp.Body)
}

// metricValue returns a sample's value, or 0 when the series is absent
// (a daemon without a store simply has no swpf_store_* series).
func metricValue(samples []obs.Sample, name string, labels ...obs.Label) float64 {
	if s := obs.Find(samples, name, labels...); s != nil {
		return s.Value
	}
	return 0
}

// cmdTop renders the dashboard once, or every -interval with -follow.
func cmdTop(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfctl top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addrFlag = fs.String("addr", "", "coordinator URL (default $SWPFCTL_ADDR, config file, or "+defaultAddr+")")
		followIt = fs.Bool("follow", false, "refresh every -interval instead of printing once")
		interval = fs.Duration("interval", 2*time.Second, "refresh period with -follow")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("top takes no positional arguments (got %q)", fs.Arg(0))
	}
	addr, _ := resolveAddr(*addrFlag)
	for {
		samples, err := scrapeMetrics(addr)
		if err != nil {
			return err
		}
		if *followIt {
			fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderTop(stdout, addr, samples)
		if !*followIt {
			return nil
		}
		time.Sleep(*interval)
	}
}

// renderTop prints the dashboard sections. Every number is read back
// out of the exposition, never from /fleet — if top shows it, the
// metrics pipeline carried it.
func renderTop(w io.Writer, addr string, samples []obs.Sample) {
	v := func(name string, labels ...obs.Label) float64 { return metricValue(samples, name, labels...) }

	fmt.Fprintf(w, "swpf top — %s — %s\n\n", addr, time.Now().Format(time.TimeOnly))
	fmt.Fprintf(w, "queue   pending %.0f  leased %.0f  leases %.0f  workers %.0f  cap %.0f\n",
		v("swpf_queue_pending"), v("swpf_queue_leased"), v("swpf_queue_leases"),
		v("swpf_queue_workers"), v("swpf_queue_max_pending"))
	fmt.Fprintf(w, "cells   completed %.0f  failed %.0f  cache %.0f  dedup %.0f  requeued %.0f  dropped %.0f\n",
		v("swpf_queue_completed_total"), v("swpf_queue_failed_total"),
		v("swpf_queue_cache_hits_total"), v("swpf_queue_dedup_hits_total"),
		v("swpf_queue_requeued_total"), v("swpf_queue_dup_dropped_total"))
	if n := v("swpf_fleet_cell_seconds_count"); n > 0 {
		fmt.Fprintf(w, "latency %.0f cells, avg %s lease→complete\n",
			n, fmtSeconds(v("swpf_fleet_cell_seconds_sum")/n))
	}

	if obs.Find(samples, "swpf_store_puts_total") != nil {
		fmt.Fprintf(w, "store   hits %.0f  misses %.0f  puts %.0f\n",
			v("swpf_store_hits_total"), v("swpf_store_misses_total"), v("swpf_store_puts_total"))
	}
	for _, s := range samples {
		if s.Name != "swpf_store_peer_up" {
			continue
		}
		var base string
		for _, l := range s.Labels {
			if l.Key == "peer" {
				base = l.Value
			}
		}
		state := "down"
		if s.Value == 1 {
			state = "up"
		}
		peer := obs.L("peer", base)
		fmt.Fprintf(w, "peer    %s %s  hits %.0f  errors %.0f  queued %.0f  dropped %.0f  trips %.0f\n",
			base, state,
			metricValue(samples, "swpf_store_peer_hits_total", peer),
			metricValue(samples, "swpf_store_peer_errors_total", peer),
			metricValue(samples, "swpf_store_peer_queue_depth", peer),
			metricValue(samples, "swpf_store_peer_dropped_total", peer),
			metricValue(samples, "swpf_store_peer_breaker_transitions_total", peer))
	}

	var sweepTotal float64
	var sweepParts []string
	for _, source := range []string{"cache", "direct", "recorded", "replayed"} {
		n := v("swpf_sweep_cells_total", obs.L("source", source))
		sweepTotal += n
		sweepParts = append(sweepParts, fmt.Sprintf("%s %.0f", source, n))
	}
	if sweepTotal > 0 {
		fmt.Fprintf(w, "sweep   %s\n", strings.Join(sweepParts, "  "))
	}
	if n := v("swpf_tune_evaluations_total"); n > 0 {
		fmt.Fprintf(w, "tune    rounds %.0f  evaluations %.0f  memo hits %.0f\n",
			v("swpf_tune_rounds_total"), n, v("swpf_tune_memo_hits_total"))
	}

	fmt.Fprintf(w, "\nhttp    %-28s %8s %10s %12s\n", "route", "reqs", "avg", "bytes")
	type routeRow struct {
		route string
		reqs  float64
	}
	byRoute := make(map[string]float64)
	for _, s := range samples {
		if s.Name != "swpf_http_requests_total" {
			continue
		}
		for _, l := range s.Labels {
			if l.Key == "route" {
				byRoute[l.Value] += s.Value
			}
		}
	}
	rows := make([]routeRow, 0, len(byRoute))
	for route, reqs := range byRoute {
		if reqs > 0 {
			rows = append(rows, routeRow{route, reqs})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].reqs != rows[j].reqs {
			return rows[i].reqs > rows[j].reqs
		}
		return rows[i].route < rows[j].route
	})
	for _, r := range rows {
		route := obs.L("route", r.route)
		avg := "-"
		if n := metricValue(samples, "swpf_http_request_duration_seconds_count", route); n > 0 {
			avg = fmtSeconds(metricValue(samples, "swpf_http_request_duration_seconds_sum", route) / n)
		}
		fmt.Fprintf(w, "        %-28s %8.0f %10s %12.0f\n",
			r.route, r.reqs, avg, metricValue(samples, "swpf_http_response_bytes_total", route))
	}
}

// fmtSeconds renders a duration in seconds at a human scale.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
