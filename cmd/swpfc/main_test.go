package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ir"
)

// testKernel is the paper's canonical stride-indirect pattern,
// sum += a[idx[i]], which the pass must cover with prefetches.
const testKernel = `module t
func sum(%a: ptr, %idx: ptr, %n: i64) -> i64 {
entry:
  br head
head:
  %i = phi i64 [entry: 0, body: %i2]
  %s = phi i64 [entry: 0, body: %s2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %ip = gep %idx, %i, 8
  %j = load i64, %ip
  %ap = gep %a, %j, 8
  %v = load i64, %ap
  %s2 = add %s, %v
  %i2 = add %i, 1
  br head
exit:
  ret %s
}
`

func TestRoundTripStdin(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader(testKernel), &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	mod, err := ir.Parse(out.String())
	if err != nil {
		t.Fatalf("output does not re-parse: %v\n%s", err, out.String())
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("output does not verify: %v", err)
	}
	if !strings.Contains(out.String(), "prefetch") {
		t.Errorf("no prefetch emitted for the stride-indirect kernel:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "prefetches") {
		t.Errorf("report missing from stderr: %s", errb.String())
	}
}

func TestRoundTripFileAndReprocess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.ir")
	if err := os.WriteFile(path, []byte(testKernel), 0o644); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := run([]string{"-q", path}, strings.NewReader(""), &first, &bytes.Buffer{}); err != nil {
		t.Fatalf("first pass: %v", err)
	}
	// The transformed output must survive a second trip through the
	// tool: parse, verify, and print without error.
	var second bytes.Buffer
	if err := run([]string{"-q", "-c", "32"}, strings.NewReader(first.String()), &second, &bytes.Buffer{}); err != nil {
		t.Fatalf("second pass: %v", err)
	}
	if _, err := ir.Parse(second.String()); err != nil {
		t.Fatalf("second output does not re-parse: %v", err)
	}
}

func TestDotModes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-q", "-dot", "cfg"}, strings.NewReader(testKernel), &out, &bytes.Buffer{}); err != nil {
		t.Fatalf("dot cfg: %v", err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Errorf("cfg output is not Graphviz:\n%s", out.String())
	}
	if err := run([]string{"-dot", "bogus"}, strings.NewReader(testKernel), &out, &bytes.Buffer{}); err == nil {
		t.Error("bogus -dot mode accepted")
	}
}

func TestRejectsInvalidInput(t *testing.T) {
	if err := run(nil, strings.NewReader("not ir at all"), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("garbage input accepted")
	}
}
