// Command swpfc is the prefetch "compiler" driver: it reads a module in
// textual IR, runs the automatic software-prefetch generation pass of
// Ainsworth & Jones (CGO 2017), and prints the transformed IR.
//
// Usage:
//
//	swpfc [flags] [file.ir]        (stdin when no file)
//
// Flags select the look-ahead constant, the restricted ICC-like mode,
// stride companions, stagger depth and loop hoisting. A report of
// emitted prefetches and rejected loads goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/prefetch"
)

func main() {
	var (
		c        = flag.Int64("c", 64, "look-ahead constant (eq. 1)")
		icc      = flag.Bool("icc", false, "restricted stride-indirect-only mode (fig. 4d baseline)")
		noStride = flag.Bool("no-stride", false, "suppress stride companion prefetches (fig. 5 'indirect only')")
		depth    = flag.Int("depth", 0, "max stagger depth, 0 = unlimited (fig. 7)")
		hoist    = flag.Bool("hoist", true, "enable prefetch loop hoisting (§4.6)")
		pure     = flag.Bool("pure-calls", false, "allow side-effect-free calls in prefetch code (§4.1 extension)")
		flat     = flag.Bool("flat-offset", false, "disable eq. (1) scheduling (ablation)")
		optimize = flag.Bool("O", false, "run cleanup passes (fold/CSE/DCE) after prefetch generation")
		split    = flag.Bool("split", false, "split loops to hoist prefetch bounds checks (Mowry/ICC-style)")
		dot      = flag.String("dot", "", "emit Graphviz output instead of IR: 'cfg' or 'ddg'")
		quiet    = flag.Bool("q", false, "suppress the transformation report")
	)
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := ir.Parse(src)
	if err != nil {
		fatal(err)
	}
	if err := mod.Verify(); err != nil {
		fatal(fmt.Errorf("input: %w", err))
	}

	opts := prefetch.Options{
		C:                 *c,
		NoStrideCompanion: *noStride,
		MaxStaggerDepth:   *depth,
		Hoist:             *hoist,
		AllowPureCalls:    *pure,
		FlatOffset:        *flat,
		SplitLoops:        *split,
	}
	if *icc {
		opts.Mode = prefetch.ModeSimpleStrideIndirect
	}
	results := prefetch.Run(mod, opts)
	if err := mod.Verify(); err != nil {
		fatal(fmt.Errorf("internal error: pass produced invalid IR: %w", err))
	}
	if *optimize {
		cleaned := opt.Run(mod)
		if err := mod.Verify(); err != nil {
			fatal(fmt.Errorf("internal error: cleanup produced invalid IR: %w", err))
		}
		if !*quiet {
			for n, r := range cleaned {
				if r.Folded+r.CSEHits+r.DeadInstrs+r.DeadArcs > 0 {
					fmt.Fprintf(os.Stderr, "; func @%s cleanup: %d folded, %d CSE, %d dead\n",
						n, r.Folded, r.CSEHits, r.DeadInstrs)
				}
			}
		}
	}

	switch *dot {
	case "":
		fmt.Print(mod.String())
	case "cfg":
		for _, f := range mod.Funcs {
			fmt.Print(ir.DotCFG(f))
		}
	case "ddg":
		for _, f := range mod.Funcs {
			fmt.Print(ir.DotDDG(f))
		}
	default:
		fatal(fmt.Errorf("unknown -dot mode %q (want cfg or ddg)", *dot))
	}

	if !*quiet {
		names := make([]string, 0, len(results))
		for n := range results {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r := results[n]
			if len(r.Emitted) == 0 && len(r.Rejections) == 0 {
				continue
			}
			fmt.Fprintf(os.Stderr, "; func @%s: %d prefetches, %d new instructions\n",
				n, len(r.Emitted), r.NewInstrs)
			for _, e := range r.Emitted {
				fmt.Fprintf(os.Stderr, ";   prefetch for %%%s: position %d/%d, offset %d iterations\n",
					e.Target.Name, e.Position, e.ChainLen, e.Offset)
			}
			for _, rej := range r.Rejections {
				fmt.Fprintf(os.Stderr, ";   skipped %%%s: %s\n", rej.Load.Name, rej.Reason)
			}
		}
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swpfc:", err)
	os.Exit(1)
}
