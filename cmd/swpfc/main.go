// Command swpfc is the prefetch "compiler" driver: it reads a module in
// textual IR, runs the automatic software-prefetch generation pass of
// Ainsworth & Jones (CGO 2017), and prints the transformed IR.
//
// Usage:
//
//	swpfc [flags] [file.ir]        (stdin when no file)
//
// Flags select the look-ahead constant, the restricted ICC-like mode,
// stride companions, stagger depth and loop hoisting. A report of
// emitted prefetches and rejected loads goes to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/prefetch"
)

// errParse marks a flag-parsing failure the FlagSet has already
// reported to stderr.
var errParse = errors.New("flag parse")

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // usage already printed; exit 0
	case errors.Is(err, errParse):
		os.Exit(2) // the FlagSet already reported the problem
	default:
		fmt.Fprintln(os.Stderr, "swpfc:", err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags and file access are
// parameterised on the given streams.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("swpfc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		c        = fs.Int64("c", 64, "look-ahead constant (eq. 1)")
		icc      = fs.Bool("icc", false, "restricted stride-indirect-only mode (fig. 4d baseline)")
		noStride = fs.Bool("no-stride", false, "suppress stride companion prefetches (fig. 5 'indirect only')")
		depth    = fs.Int("depth", 0, "max stagger depth, 0 = unlimited (fig. 7)")
		hoist    = fs.Bool("hoist", true, "enable prefetch loop hoisting (§4.6)")
		pure     = fs.Bool("pure-calls", false, "allow side-effect-free calls in prefetch code (§4.1 extension)")
		flat     = fs.Bool("flat-offset", false, "disable eq. (1) scheduling (ablation)")
		optimize = fs.Bool("O", false, "run cleanup passes (fold/CSE/DCE) after prefetch generation")
		split    = fs.Bool("split", false, "split loops to hoist prefetch bounds checks (Mowry/ICC-style)")
		dot      = fs.String("dot", "", "emit Graphviz output instead of IR: 'cfg' or 'ddg'")
		quiet    = fs.Bool("q", false, "suppress the transformation report")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return fmt.Errorf("%w: %v", errParse, err)
	}

	src, err := readInput(fs.Arg(0), stdin)
	if err != nil {
		return err
	}
	mod, err := ir.Parse(src)
	if err != nil {
		return err
	}
	if err := mod.Verify(); err != nil {
		return fmt.Errorf("input: %w", err)
	}

	opts := prefetch.Options{
		C:                 *c,
		NoStrideCompanion: *noStride,
		MaxStaggerDepth:   *depth,
		Hoist:             *hoist,
		AllowPureCalls:    *pure,
		FlatOffset:        *flat,
		SplitLoops:        *split,
	}
	if *icc {
		opts.Mode = prefetch.ModeSimpleStrideIndirect
	}
	results := prefetch.Run(mod, opts)
	if err := mod.Verify(); err != nil {
		return fmt.Errorf("internal error: pass produced invalid IR: %w", err)
	}
	if *optimize {
		cleaned := opt.Run(mod)
		if err := mod.Verify(); err != nil {
			return fmt.Errorf("internal error: cleanup produced invalid IR: %w", err)
		}
		if !*quiet {
			for n, r := range cleaned {
				if r.Folded+r.CSEHits+r.DeadInstrs+r.DeadArcs > 0 {
					fmt.Fprintf(stderr, "; func @%s cleanup: %d folded, %d CSE, %d dead\n",
						n, r.Folded, r.CSEHits, r.DeadInstrs)
				}
			}
		}
	}

	switch *dot {
	case "":
		fmt.Fprint(stdout, mod.String())
	case "cfg":
		for _, f := range mod.Funcs {
			fmt.Fprint(stdout, ir.DotCFG(f))
		}
	case "ddg":
		for _, f := range mod.Funcs {
			fmt.Fprint(stdout, ir.DotDDG(f))
		}
	default:
		return fmt.Errorf("unknown -dot mode %q (want cfg or ddg)", *dot)
	}

	if !*quiet {
		names := make([]string, 0, len(results))
		for n := range results {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r := results[n]
			if len(r.Emitted) == 0 && len(r.Rejections) == 0 {
				continue
			}
			fmt.Fprintf(stderr, "; func @%s: %d prefetches, %d new instructions\n",
				n, len(r.Emitted), r.NewInstrs)
			for _, e := range r.Emitted {
				fmt.Fprintf(stderr, ";   prefetch for %%%s: position %d/%d, offset %d iterations\n",
					e.Target.Name, e.Position, e.ChainLen, e.Offset)
			}
			for _, rej := range r.Rejections {
				fmt.Fprintf(stderr, ";   skipped %%%s: %s\n", rej.Load.Name, rej.Reason)
			}
		}
	}
	return nil
}

func readInput(path string, stdin io.Reader) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
