// Package repro's top-level benchmarks regenerate every figure of the
// evaluation section of Ainsworth & Jones, "Software Prefetching for
// Indirect Memory Accesses" (CGO 2017), plus ablations of the design
// choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem            # quick-quality figures
//	go test -bench=Fig4 -tags=...         # one figure
//
// Each benchmark runs the experiment once per b.N iteration and
// reports the figure's headline number (a speedup or a percentage) as
// a custom metric, so `go test -bench` output doubles as a results
// table. The full-size tables live in EXPERIMENTS.md and are produced
// by cmd/swpfbench.
package repro

import (
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/uarch"
	"repro/internal/workloads"
)

// quality for benchmarks: quick inputs keep `go test -bench=.` in the
// minutes range; cmd/swpfbench regenerates the full-size tables.
const q = bench.Quick

// lastCell parses the numeric value at table position (row, col).
func cell(b *testing.B, t *bench.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig2 regenerates figure 2 (prefetch schemes on IS/Haswell)
// and reports the optimal-scheme speedup.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig2(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 3, 1), "optimal-speedup")
	}
}

func benchFig4(b *testing.B, system string) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig4(q, system)
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		b.ReportMetric(cell(b, t, last, len(t.Rows[last])-2), "auto-geomean")
		b.ReportMetric(cell(b, t, last, len(t.Rows[last])-1), "manual-geomean")
	}
}

// BenchmarkFig4Haswell .. A53 regenerate the four panels of figure 4.
func BenchmarkFig4Haswell(b *testing.B) { benchFig4(b, "Haswell") }

// BenchmarkFig4XeonPhi includes the ICC-generated series (fig. 4d).
func BenchmarkFig4XeonPhi(b *testing.B) { benchFig4(b, "XeonPhi") }

// BenchmarkFig4A57 is the Cortex-A57 panel.
func BenchmarkFig4A57(b *testing.B) { benchFig4(b, "A57") }

// BenchmarkFig4A53 is the Cortex-A53 panel.
func BenchmarkFig4A53(b *testing.B) { benchFig4(b, "A53") }

// BenchmarkFig5 regenerates figure 5 (indirect-only vs indirect+stride).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig5(q)
		if err != nil {
			b.Fatal(err)
		}
		last := len(t.Rows) - 1
		b.ReportMetric(cell(b, t, last, 1), "indirect-only-geomean")
		b.ReportMetric(cell(b, t, last, 2), "with-stride-geomean")
	}
}

func benchFig6(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig6(q, name)
		if err != nil {
			b.Fatal(err)
		}
		// Report the c=64 column (index 5) of the first system row, the
		// paper's chosen default.
		b.ReportMetric(cell(b, t, 0, 5), "haswell-c64-speedup")
	}
}

// BenchmarkFig6IS .. HJ2 regenerate the look-ahead sweeps of figure 6.
func BenchmarkFig6IS(b *testing.B) { benchFig6(b, "IS") }

// BenchmarkFig6CG sweeps Conjugate Gradient.
func BenchmarkFig6CG(b *testing.B) { benchFig6(b, "CG") }

// BenchmarkFig6RA sweeps RandomAccess.
func BenchmarkFig6RA(b *testing.B) { benchFig6(b, "RA") }

// BenchmarkFig6HJ2 sweeps Hash Join 2EPB.
func BenchmarkFig6HJ2(b *testing.B) { benchFig6(b, "HJ-2") }

// BenchmarkFig7 regenerates figure 7 (HJ-8 stagger depth).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig7(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 3), "haswell-depth3-speedup")
	}
}

// BenchmarkFig8 regenerates figure 8 (instruction overhead, Haswell).
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig8(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 1), "is-extra-instr-pct")
	}
}

// BenchmarkFig9 regenerates figure 9 (multicore bandwidth, IS/Haswell).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig9(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 2, 1), "4core-noprefetch-throughput")
		b.ReportMetric(cell(b, t, 2, 2), "4core-prefetch-throughput")
	}
}

// BenchmarkFig10 regenerates figure 10 (page size vs prefetch benefit).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig10(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cell(b, t, 0, 1), "is-small-pages-speedup")
		b.ReportMetric(cell(b, t, 0, 2), "is-huge-pages-speedup")
	}
}

// --- Ablations (DESIGN.md "key design decisions") ---

// BenchmarkAblationFlatOffset compares eq. (1) staggered scheduling
// against a flat look-ahead (every chain position at offset c) on the
// deep HJ-8 chain: staggering exists so that each dependent load's
// input was itself prefetched c/t iterations earlier.
func BenchmarkAblationFlatOffset(b *testing.B) {
	w := workloads.HJ(1<<13, 8)
	cfg := uarch.A53()
	for i := 0; i < b.N; i++ {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eq1, err := core.Run(w, cfg, core.VariantAuto, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		flat, err := core.Run(w, cfg, core.VariantAuto, core.Options{FlatOffset: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.Speedup(base, eq1), "eq1-speedup")
		b.ReportMetric(core.Speedup(base, flat), "flat-speedup")
	}
}

// BenchmarkAblationClampCost measures the dynamic instruction cost of
// the §4.2 fault-avoidance clamps: the share of the prefetched run's
// instructions spent on min/max clamping.
func BenchmarkAblationClampCost(b *testing.B) {
	w := workloads.IS(1<<13, 1<<16)
	cfg := uarch.Haswell()
	for i := 0; i < b.N; i++ {
		auto, err := core.Run(w, cfg, core.VariantAuto, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		clamps := auto.Stats.OpCounts[ir.OpMin] + auto.Stats.OpCounts[ir.OpMax]
		pct := 100 * float64(clamps) / float64(auto.Stats.Instructions)
		b.ReportMetric(pct, "clamp-instr-pct")
	}
}

// BenchmarkAblationHoist compares the automatic pass with and without
// the §4.6 loop-hoisting extension on HJ-8, whose linked-list walk is
// exactly the inner-loop/non-induction-phi shape hoisting exists for:
// with hoisting on, the pass substitutes the bucket head pointer and
// prefetches the first chain node.
func BenchmarkAblationHoist(b *testing.B) {
	w := workloads.HJ(1<<14, 8)
	cfg := uarch.A53()
	for i := 0; i < b.N; i++ {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		with, err := core.Run(w, cfg, core.VariantAuto, core.Options{Hoist: true})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Run(w, cfg, core.VariantAuto, core.Options{Hoist: false})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(core.Speedup(base, with), "hoist-speedup")
		b.ReportMetric(core.Speedup(base, without), "no-hoist-speedup")
	}
}

// BenchmarkAblationCleanup measures how much of figure 8's instruction
// overhead ordinary compiler cleanup (fold/CSE/DCE, package opt)
// recovers from the prefetch pass's duplicated address code.
func BenchmarkAblationCleanup(b *testing.B) {
	w := workloads.IS(1<<13, 1<<16)
	cfg := uarch.Haswell()
	for i := 0; i < b.N; i++ {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Raw pass output.
		raw := w.Plain()
		prefetch.Run(raw.Mod, prefetch.DefaultOptions())
		rawInstrs := runInstrs(b, raw, cfg)
		// Cleaned pass output.
		cleaned := w.Plain()
		prefetch.Run(cleaned.Mod, prefetch.DefaultOptions())
		opt.Run(cleaned.Mod)
		cleanInstrs := runInstrs(b, cleaned, cfg)

		baseInstrs := float64(base.Stats.Instructions)
		b.ReportMetric(100*(float64(rawInstrs)-baseInstrs)/baseInstrs, "raw-overhead-pct")
		b.ReportMetric(100*(float64(cleanInstrs)-baseInstrs)/baseInstrs, "cleaned-overhead-pct")
	}
}

func runInstrs(b *testing.B, inst *workloads.Instance, cfg *sim.Config) uint64 {
	b.Helper()
	mach := interp.New(inst.Mod, cfg)
	if err := inst.Run(mach); err != nil {
		b.Fatal(err)
	}
	return mach.Stats().Instructions
}

// BenchmarkPassThroughput measures the compiler pass itself: kernels
// transformed per second.
func BenchmarkPassThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.Tiny() {
			inst := w.Plain()
			prefetch.Run(inst.Mod, prefetch.DefaultOptions())
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated instructions per
// second of the interpreter + timing model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := workloads.IS(1<<14, 1<<16)
	cfg := uarch.Haswell()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Stats.Executed
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkAblationLoopSplit compares the clamped pass against the
// loop-splitting extension (prefetch bounds checks hoisted out of the
// loop by peeling the final iterations — the trick §6.1 credits for
// ICC beating the prototype on IS).
func BenchmarkAblationLoopSplit(b *testing.B) {
	w := workloads.IS(1<<14, 1<<17)
	cfg := uarch.A53()
	for i := 0; i < b.N; i++ {
		base, err := core.Run(w, cfg, core.VariantPlain, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		clamped := w.Plain()
		prefetch.Run(clamped.Mod, prefetch.Options{C: 64})
		split := w.Plain()
		prefetch.Run(split.Mod, prefetch.Options{C: 64, SplitLoops: true})
		cc := runCycles(b, clamped, cfg)
		sc := runCycles(b, split, cfg)
		b.ReportMetric(base.Cycles/cc, "clamped-speedup")
		b.ReportMetric(base.Cycles/sc, "split-speedup")
	}
}

func runCycles(b *testing.B, inst *workloads.Instance, cfg *sim.Config) float64 {
	b.Helper()
	mach := interp.New(inst.Mod, cfg)
	if err := inst.Run(mach); err != nil {
		b.Fatal(err)
	}
	return mach.Stats().Cycles
}
