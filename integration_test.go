package repro

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd/ binaries into a temp dir once per
// test run and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("tool builds skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

const integrationKernel = `module k

func gather(%a: ptr, %b: ptr, %n: i64) -> i64 {
entry:
  br header
header:
  %i = phi i64 [entry: 0, body: %i2]
  %s = phi i64 [entry: 0, body: %s2]
  %c = cmp lt %i, %n
  cbr %c, body, exit
body:
  %t1 = gep %a, %i, 8
  %t2 = load i64, %t1
  %t3 = gep %b, %t2, 8
  %t4 = load i64, %t3
  %s2 = add %s, %t4
  %i2 = add %i, 1
  br header
exit:
  ret %s
}
`

func TestSwpfcEndToEnd(t *testing.T) {
	bin := buildTool(t, "swpfc")
	src := filepath.Join(t.TempDir(), "k.ir")
	if err := os.WriteFile(src, []byte(integrationKernel), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-c", "32", src)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("swpfc: %v\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "prefetch") {
		t.Errorf("no prefetches in output:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "2 prefetches") {
		t.Errorf("report missing:\n%s", stderr.String())
	}

	// -icc must reject this (parameter arrays have no visible sizes).
	var stderr2 bytes.Buffer
	cmd2 := exec.Command(bin, "-icc", src)
	cmd2.Stdout = &bytes.Buffer{}
	cmd2.Stderr = &stderr2
	if err := cmd2.Run(); err != nil {
		t.Fatalf("swpfc -icc: %v", err)
	}
	if !strings.Contains(stderr2.String(), "skipped") {
		t.Errorf("-icc should report skipped loads:\n%s", stderr2.String())
	}
}

func TestSwpfcOptFlagShrinksOutput(t *testing.T) {
	bin := buildTool(t, "swpfc")
	src := filepath.Join(t.TempDir(), "k.ir")
	if err := os.WriteFile(src, []byte(integrationKernel), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(args ...string) string {
		var stdout bytes.Buffer
		cmd := exec.Command(bin, append(args, src)...)
		cmd.Stdout = &stdout
		cmd.Stderr = &bytes.Buffer{}
		if err := cmd.Run(); err != nil {
			t.Fatalf("swpfc %v: %v", args, err)
		}
		return stdout.String()
	}
	raw := run("-q")
	opt := run("-q", "-O")
	if strings.Count(opt, "\n") > strings.Count(raw, "\n") {
		t.Errorf("-O grew the output: %d -> %d lines",
			strings.Count(raw, "\n"), strings.Count(opt, "\n"))
	}
	if !strings.Contains(opt, "prefetch") {
		t.Error("-O removed the prefetches")
	}
}

func TestSwpfcPipesIntoSwpfsim(t *testing.T) {
	swpfc := buildTool(t, "swpfc")
	swpfsim := buildTool(t, "swpfsim")
	src := filepath.Join(t.TempDir(), "k.ir")
	if err := os.WriteFile(src, []byte(integrationKernel), 0o644); err != nil {
		t.Fatal(err)
	}

	// Transform, then simulate the transformed IR from stdin. The
	// kernel sums b[a[i]] over unmapped pointers — so use swpfsim on
	// the original with n=0 to stay in bounds (arrays unused).
	var transformed bytes.Buffer
	c1 := exec.Command(swpfc, "-q", src)
	c1.Stdout = &transformed
	if err := c1.Run(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	c2 := exec.Command(swpfsim, "-system", "A53", "-fn", "gather", "-", "0", "0", "0")
	c2.Stdin = &transformed
	c2.Stdout = &out
	c2.Stderr = &out
	if err := c2.Run(); err != nil {
		t.Fatalf("swpfsim: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"result:", "cycles:", "system:          A53"} {
		if !strings.Contains(s, want) {
			t.Errorf("swpfsim output missing %q:\n%s", want, s)
		}
	}
}

func TestSwpfbenchQuickFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("bench tool run")
	}
	bin := buildTool(t, "swpfbench")
	var out bytes.Buffer
	cmd := exec.Command(bin, "-quick", "-exp", "fig2")
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("swpfbench: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Figure 2") || !strings.Contains(out.String(), "Optimal") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestSwpfbenchRejectsUnknownExperiment(t *testing.T) {
	bin := buildTool(t, "swpfbench")
	cmd := exec.Command(bin, "-exp", "fig99")
	if err := cmd.Run(); err == nil {
		t.Error("unknown experiment accepted")
	}
}
